package pseudofs

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/power"
)

func newHost(seed int64) (*kernel.Kernel, *FS) {
	k := kernel.New(kernel.Options{Hostname: "node-a", Seed: seed})
	return k, Build(k, DefaultHardware())
}

func containerView(k *kernel.Kernel, name, cgroup string) View {
	ns := k.NewNSSet(name, cgroup)
	return View{NS: ns, CgroupPath: cgroup}
}

func mustRead(t *testing.T, m *Mount, path string) string {
	t.Helper()
	s, err := m.Read(path)
	if err != nil {
		t.Fatalf("Read(%s): %v", path, err)
	}
	return s
}

func TestBuildRegistersExpectedChannels(t *testing.T) {
	_, fs := newHost(1)
	paths := fs.Paths()
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	for _, want := range []string{
		"/proc/uptime", "/proc/version", "/proc/loadavg", "/proc/meminfo",
		"/proc/zoneinfo", "/proc/stat", "/proc/cpuinfo", "/proc/interrupts",
		"/proc/softirqs", "/proc/schedstat", "/proc/sched_debug",
		"/proc/timer_list", "/proc/locks", "/proc/modules",
		"/proc/sys/fs/dentry-state", "/proc/sys/fs/inode-nr", "/proc/sys/fs/file-nr",
		"/proc/sys/kernel/random/boot_id", "/proc/sys/kernel/random/entropy_avail",
		"/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost",
		"/proc/fs/ext4/sda1/mb_groups",
		"/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
		"/sys/devices/system/node/node0/numastat",
		"/sys/devices/system/cpu/cpu0/cpuidle/state0/usage",
		"/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
		"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj",
		"/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/energy_uj",
	} {
		if !set[want] {
			t.Errorf("missing channel %s", want)
		}
	}
}

func TestHardwareGatesSensors(t *testing.T) {
	k := kernel.New(kernel.Options{Seed: 2})
	fs := Build(k, Hardware{HasRAPL: false, HasCoretemp: false})
	m := NewMount(fs, HostView(k), Policy{})
	if _, err := m.Read("/sys/class/powercap/intel-rapl:0/energy_uj"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("RAPL should be absent, got %v", err)
	}
	if _, err := m.Read("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("coretemp should be absent, got %v", err)
	}
}

func TestGlobalChannelsIdenticalAcrossContexts(t *testing.T) {
	k, fs := newHost(3)
	host := NewMount(fs, HostView(k), Policy{})
	cont := NewMount(fs, containerView(k, "c1", "/docker/c1"), Policy{})
	k.Tick(10, 10)

	// Every Table I channel must read identically from host and container
	// — that identity IS the leak.
	for _, p := range []string{
		"/proc/uptime", "/proc/version", "/proc/meminfo", "/proc/stat",
		"/proc/loadavg", "/proc/interrupts", "/proc/softirqs",
		"/proc/sys/kernel/random/boot_id", "/proc/zoneinfo",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
	} {
		h := mustRead(t, host, p)
		c := mustRead(t, cont, p)
		if h != c {
			t.Errorf("%s differs between host and container:\nhost: %q\ncont: %q", p, h, c)
		}
	}
}

func TestNamespacedChannelsDiffer(t *testing.T) {
	k, fs := newHost(4)
	host := NewMount(fs, HostView(k), Policy{})
	cont := NewMount(fs, containerView(k, "web-1", "/docker/web1"), Policy{})

	if h, c := mustRead(t, host, "/proc/sys/kernel/hostname"), mustRead(t, cont, "/proc/sys/kernel/hostname"); h == c {
		t.Errorf("hostname should be namespaced: both %q", h)
	} else if !strings.Contains(c, "web-1") {
		t.Errorf("container hostname = %q", c)
	}
	if h, c := mustRead(t, host, "/proc/net/dev"), mustRead(t, cont, "/proc/net/dev"); h == c {
		t.Error("net/dev should be namespaced")
	} else if strings.Contains(c, "docker0") {
		t.Error("container must not see docker0 in namespaced net/dev")
	}
	if h, c := mustRead(t, host, "/proc/self/cgroup"), mustRead(t, cont, "/proc/self/cgroup"); h == c {
		t.Error("self/cgroup should be namespaced")
	}
}

func TestIfpriomapLeaksHostDevices(t *testing.T) {
	k, fs := newHost(5)
	cont := NewMount(fs, containerView(k, "c1", "/docker/c1"), Policy{})
	got := mustRead(t, cont, "/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
	// The container's NET namespace has only lo+eth0, yet the buggy
	// handler lists all host devices, including docker0 and eth1.
	for _, dev := range []string{"lo", "eth0", "eth1", "docker0"} {
		if !strings.Contains(got, dev+" ") {
			t.Errorf("ifpriomap missing host device %s:\n%s", dev, got)
		}
	}
}

func TestSchedDebugShowsForeignTaskNames(t *testing.T) {
	k, fs := newHost(6)
	// A task with a crafted name in container A...
	nsA := k.NewNSSet("a", "/docker/a")
	k.Spawn("cores-sig-12345", nsA, "/docker/a", 0.1, perfcount.Rates{})
	// ...is visible in container B's sched_debug.
	contB := NewMount(fs, containerView(k, "b", "/docker/b"), Policy{})
	if got := mustRead(t, contB, "/proc/sched_debug"); !strings.Contains(got, "cores-sig-12345") {
		t.Fatalf("sched_debug does not leak foreign task name:\n%s", got)
	}
}

func TestTimerListShowsImplants(t *testing.T) {
	k, fs := newHost(7)
	nsA := k.NewNSSet("a", "/docker/a")
	task := k.Spawn("timer-sig-777", nsA, "/docker/a", 0, perfcount.Rates{})
	task.HasTimer = true
	contB := NewMount(fs, containerView(k, "b", "/docker/b"), Policy{})
	if got := mustRead(t, contB, "/proc/timer_list"); !strings.Contains(got, "timer-sig-777") {
		t.Fatalf("timer_list does not leak implant:\n%s", got)
	}
}

func TestLocksShowImplants(t *testing.T) {
	k, fs := newHost(8)
	nsA := k.NewNSSet("a", "/docker/a")
	task := k.Spawn("locker", nsA, "/docker/a", 0, perfcount.Rates{})
	k.AddFileLock(task, "WRITE", 987654)
	contB := NewMount(fs, containerView(k, "b", "/docker/b"), Policy{})
	if got := mustRead(t, contB, "/proc/locks"); !strings.Contains(got, "987654") {
		t.Fatalf("locks does not leak implant:\n%s", got)
	}
}

func TestEnergyUJTracksMeter(t *testing.T) {
	k, fs := newHost(9)
	cont := NewMount(fs, containerView(k, "c", "/docker/c"), Policy{})
	k.Spawn("w", k.InitNS(), "/", 8, perfcount.Rates{Instructions: 2.4e10, Cycles: 2.7e10, CacheMisses: 4e7, BranchMisses: 1e8})
	k.Tick(1, 1)
	r1 := strings.TrimSpace(mustRead(t, cont, "/sys/class/powercap/intel-rapl:0/energy_uj"))
	k.Tick(2, 1)
	r2 := strings.TrimSpace(mustRead(t, cont, "/sys/class/powercap/intel-rapl:0/energy_uj"))
	if r1 == r2 {
		t.Fatal("energy counter did not advance")
	}
}

func TestSetEnergyProviderVirtualizesRAPL(t *testing.T) {
	k, fs := newHost(10)
	fs.SetEnergyProvider(fakeEnergy{})
	cont := NewMount(fs, containerView(k, "c", "/docker/c"), Policy{})
	if got := mustRead(t, cont, "/sys/class/powercap/intel-rapl:0/energy_uj"); strings.TrimSpace(got) != "42" {
		t.Fatalf("virtualized energy = %q, want 42", got)
	}
}

type fakeEnergy struct{}

func (fakeEnergy) EnergyUJ(View, power.Domain) (uint64, error) { return 42, nil }

func TestPolicyDenyAndEmpty(t *testing.T) {
	k, fs := newHost(11)
	pol := Policy{Name: "harden", Rules: []Rule{
		{Pattern: "/proc/timer_list", Do: Deny},
		{Pattern: "/proc/sys/kernel/random/boot_id", Do: Empty},
		{Pattern: "/sys/class/powercap/**", Do: Deny},
	}}
	m := NewMount(fs, containerView(k, "c", "/docker/c"), pol)
	if _, err := m.Read("/proc/timer_list"); !errors.Is(err, ErrDenied) {
		t.Fatalf("timer_list should be denied, got %v", err)
	}
	if got := mustRead(t, m, "/proc/sys/kernel/random/boot_id"); got != "" {
		t.Fatalf("boot_id should be empty, got %q", got)
	}
	if _, err := m.Read("/sys/class/powercap/intel-rapl:0/energy_uj"); !errors.Is(err, ErrDenied) {
		t.Fatalf("subtree deny failed: %v", err)
	}
	// Unmatched paths still readable.
	mustRead(t, m, "/proc/uptime")
}

func TestPolicyFirstMatchWins(t *testing.T) {
	p := Policy{Rules: []Rule{
		{Pattern: "/proc/meminfo", Do: Allow},
		{Pattern: "/proc/**", Do: Deny},
	}}
	if r, ok := p.Lookup("/proc/meminfo"); !ok || r.Do != Allow {
		t.Fatal("explicit allow should win")
	}
	if r, ok := p.Lookup("/proc/stat"); !ok || r.Do != Deny {
		t.Fatal("subtree deny should apply")
	}
	if _, ok := p.Lookup("/sys/x"); ok {
		t.Fatal("default should be no-match (allow)")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, path string
		want      bool
	}{
		{"/proc/uptime", "/proc/uptime", true},
		{"/proc/uptime", "/proc/uptimes", false},
		{"/proc/sys/kernel/random/*", "/proc/sys/kernel/random/boot_id", true},
		{"/proc/sys/kernel/random/*", "/proc/sys/kernel/random", false},
		{"/proc/**", "/proc/a/b/c", true},
		{"/proc/**", "/proc", true},
		{"/proc/**", "/procfake", false},
		{"/sys/devices/system/cpu/cpu*/cpuidle/state*/usage", "/sys/devices/system/cpu/cpu3/cpuidle/state2/usage", true},
		{"/sys/devices/system/cpu/cpu*/cpuidle/state*/usage", "/sys/devices/system/cpu/cpu3/cpuidle/state2/time", false},
		{"/a/*b*/c", "/a/xbyz/c", true},
		{"/a/*b*/c", "/a/xyz/c", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}

func TestReadUnknownPath(t *testing.T) {
	k, fs := newHost(12)
	m := NewMount(fs, HostView(k), Policy{})
	if _, err := m.Read("/proc/nonexistent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, fs := newHost(13)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate add should panic")
		}
	}()
	fs.add("/proc/uptime", nil)
}

func TestViewIsHost(t *testing.T) {
	k, _ := newHost(14)
	if !HostView(k).IsHost() {
		t.Fatal("HostView must be host")
	}
	if (View{}).IsHost() != true {
		t.Fatal("nil-NS view treated as host")
	}
	cv := containerView(k, "c", "/c")
	if cv.IsHost() {
		t.Fatal("container view must not be host")
	}
}

func TestCpuacctUsagePerCgroup(t *testing.T) {
	k, fs := newHost(15)
	ns := k.NewNSSet("c1", "/docker/c1")
	k.Spawn("w", ns, "/docker/c1", 2, perfcount.Rates{Instructions: 6e9, Cycles: 6.8e9})
	k.Tick(10, 10)
	cont := NewMount(fs, View{NS: ns, CgroupPath: "/docker/c1"}, Policy{})
	got := strings.TrimSpace(mustRead(t, cont, "/sys/fs/cgroup/cpuacct/cpuacct.usage"))
	if got == "0" {
		t.Fatal("cpuacct.usage should be nonzero for a busy container")
	}
	// An idle sibling container reads its own (zero) usage.
	other := NewMount(fs, containerView(k, "c2", "/docker/c2"), Policy{})
	if got := strings.TrimSpace(mustRead(t, other, "/sys/fs/cgroup/cpuacct/cpuacct.usage")); got != "0" {
		t.Fatalf("idle container cpuacct = %s, want 0", got)
	}
}

func TestCoretempReflectsThermals(t *testing.T) {
	k, fs := newHost(16)
	m := NewMount(fs, HostView(k), Policy{})
	before := mustRead(t, m, "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input")
	k.Spawn("hot", k.InitNS(), "/", 8, perfcount.Rates{Instructions: 2.4e10, Cycles: 2.7e10})
	for i := 0; i < 120; i++ {
		k.Tick(float64(i+1), 1)
	}
	after := mustRead(t, m, "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input")
	if before == after {
		t.Fatal("core temperature did not respond to load")
	}
}

func TestSysvipcShmIsProperlyNamespaced(t *testing.T) {
	k, fs := newHost(17)
	host := NewMount(fs, HostView(k), Policy{})
	cont := NewMount(fs, containerView(k, "c1", "/docker/c1"), Policy{})

	h := mustRead(t, host, "/proc/sysvipc/shm")
	c := mustRead(t, cont, "/proc/sysvipc/shm")
	if h == c {
		t.Fatal("sysvipc/shm should be namespaced (host has daemon segments)")
	}
	if !strings.Contains(h, "4194304") { // the 4 MiB daemon segment
		t.Fatalf("host segments missing:\n%s", h)
	}
	// A container-created segment appears only in its own namespace.
	cv := containerView(k, "c2", "/docker/c2")
	cv.NS.CreateShm(0xdead, 512, 1)
	cont2 := NewMount(fs, cv, Policy{})
	c2 := mustRead(t, cont2, "/proc/sysvipc/shm")
	if !strings.Contains(c2, "57005") { // 0xdead decimal
		t.Fatalf("own segment missing:\n%s", c2)
	}
	if h2 := mustRead(t, host, "/proc/sysvipc/shm"); strings.Contains(h2, "57005") {
		t.Fatal("container segment leaked into the host IPC namespace")
	}
}

func TestProcSelfNSIdentifiers(t *testing.T) {
	k, fs := newHost(18)
	host := NewMount(fs, HostView(k), Policy{})
	cont := NewMount(fs, containerView(k, "c1", "/docker/c1"), Policy{})
	for _, name := range []string{"mnt", "uts", "pid", "net", "ipc", "user", "cgroup"} {
		h := mustRead(t, host, "/proc/self/ns/"+name)
		c := mustRead(t, cont, "/proc/self/ns/"+name)
		if h == c {
			t.Errorf("ns/%s identical across contexts", name)
		}
		if !strings.HasPrefix(c, name+":[") {
			t.Errorf("ns/%s malformed: %q", name, c)
		}
	}
}

func TestReplaceSwapsHandlerAndPanicsOnUnknown(t *testing.T) {
	k, fs := newHost(19)
	fs.Replace("/proc/uptime", StringHandler(func(View) (string, error) { return "patched\n", nil }))
	m := NewMount(fs, HostView(k), Policy{})
	if got := mustRead(t, m, "/proc/uptime"); got != "patched\n" {
		t.Fatalf("replace ineffective: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Replace of unknown path should panic")
		}
	}()
	fs.Replace("/no/such/file", nil)
}

func TestMatchWrapper(t *testing.T) {
	if !Match("/proc/**", "/proc/a/b") || Match("/proc/x", "/proc/y") {
		t.Fatal("Match wrapper broken")
	}
}

func TestMountViewAndPaths(t *testing.T) {
	k, fs := newHost(20)
	v := containerView(k, "c", "/c")
	m := NewMount(fs, v, Policy{})
	if m.View().CgroupPath != "/c" {
		t.Fatal("View not preserved")
	}
	if len(m.Paths()) < 100 {
		t.Fatalf("paths = %d, tree too small", len(m.Paths()))
	}
}

func TestFilterWithNilTransformEmpties(t *testing.T) {
	k, fs := newHost(21)
	m := NewMount(fs, HostView(k), Policy{Rules: []Rule{
		{Pattern: "/proc/uptime", Do: Filter}, // nil Transform
	}})
	if got := mustRead(t, m, "/proc/uptime"); got != "" {
		t.Fatalf("nil-transform filter should empty, got %q", got)
	}
}

func TestRawThermalPackageSensorIsMaxOfCores(t *testing.T) {
	k, fs := newHost(22)
	m := NewMount(fs, HostView(k), Policy{})
	// Heat one core via a pinned task and advance.
	task := k.Spawn("hot", k.InitNS(), "/", 1, perfcount.Rates{Instructions: 3e9, Cycles: 3.4e9})
	task.Pinned = []int{4}
	for i := 0; i < 120; i++ {
		k.Tick(float64(i+1), 1)
	}
	pkg := mustRead(t, m, "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input")
	core := mustRead(t, m, "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp6_input") // core 4
	if pkg != core {
		t.Fatalf("package sensor %q should equal hottest core %q", pkg, core)
	}
}

func TestBeyondRegistryFilesRenderPlausibly(t *testing.T) {
	k, fs := newHost(23)
	d := 4.0
	k.Spawn("w", k.InitNS(), "/", d, perfcount.Rates{Instructions: 1.2e10, Cycles: 1.36e10})
	for i := 0; i < 10; i++ {
		k.Tick(float64(i+1), 1)
	}
	m := NewMount(fs, HostView(k), Policy{})
	vm := mustRead(t, m, "/proc/vmstat")
	if !strings.Contains(vm, "pgfault ") || strings.Contains(vm, "pgfault 0\n") {
		t.Fatalf("vmstat not accumulating:\n%s", vm)
	}
	ds := mustRead(t, m, "/proc/diskstats")
	if !strings.Contains(ds, "sda ") || !strings.Contains(ds, "sda1 ") {
		t.Fatalf("diskstats malformed:\n%s", ds)
	}
	bi := mustRead(t, m, "/proc/buddyinfo")
	if !strings.Contains(bi, "Node 0, zone   Normal") {
		t.Fatalf("buddyinfo malformed:\n%s", bi)
	}
	sn := mustRead(t, m, "/proc/net/softnet_stat")
	if strings.Count(sn, "\n") != k.Options().Cores {
		t.Fatalf("softnet rows = %d", strings.Count(sn, "\n"))
	}
}
