package pseudofs

import (
	"fmt"
	"strings"

	"repro/internal/power"
)

// buildSys wires the /sys tree: cgroup controller files, NUMA node stats,
// cpuidle residency, the coretemp hwmon sensors, and the Intel RAPL powercap
// interface of Case Study II.
func (fs *FS) buildSys(hw Hardware) {
	k := fs.k

	// /sys/fs/cgroup/net_prio/net_prio.ifpriomap — Case Study I. The
	// handler renders the reader's own cgroup priority map, but iterates
	// init_net's device list (for_each_netdev_rcu(&init_net, …)), so a
	// container sees every physical interface of the host.
	// (LookupCgroup, not Cgroup: read handlers must never create table
	// entries — parallel cross-validation reads these concurrently.)
	fs.add("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", func(v View) (string, error) {
		cg, _ := k.LookupCgroup(v.CgroupPath)
		var b strings.Builder
		for _, dev := range k.HostNetDevices() { // BUG preserved: host list
			prio := 0
			if cg != nil && cg.IfPrioMap != nil {
				prio = cg.IfPrioMap[dev.Name]
			}
			fmt.Fprintf(&b, "%s %d\n", dev.Name, prio)
		}
		return b.String(), nil
	})

	// cpuacct usage for the reader's cgroup — properly delegated.
	fs.add("/sys/fs/cgroup/cpuacct/cpuacct.usage", func(v View) (string, error) {
		var usage int64
		if cg, ok := k.LookupCgroup(v.CgroupPath); ok {
			usage = int64(cg.CPUUsageNS)
		}
		return fmt.Sprintf("%d\n", usage), nil
	})

	// /sys/devices/system/node/node0/{numastat,vmstat,meminfo}: NUMA node
	// counters are host-global.
	fs.add("/sys/devices/system/node/node0/numastat", func(View) (string, error) {
		n := k.NUMASnapshot()
		return fmt.Sprintf("numa_hit %d\nnuma_miss %d\nnuma_foreign %d\ninterleave_hit %d\nlocal_node %d\nother_node %d\n",
			int64(n.Hit), int64(n.Miss), int64(n.Foreign), int64(n.InterleaveHit),
			int64(n.LocalNode), int64(n.OtherNode)), nil
	})
	fs.add("/sys/devices/system/node/node0/vmstat", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		n := k.NUMASnapshot()
		return fmt.Sprintf("nr_free_pages %d\nnr_alloc_batch 63\nnr_inactive_anon %d\nnr_active_anon %d\nnuma_hit %d\nnuma_local %d\n",
			mi.FreeKB/4, mi.InactiveKB/4, mi.ActiveKB/4, int64(n.Hit), int64(n.LocalNode)), nil
	})
	fs.add("/sys/devices/system/node/node0/meminfo", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		return fmt.Sprintf("Node 0 MemTotal:       %d kB\nNode 0 MemFree:        %d kB\nNode 0 MemUsed:        %d kB\nNode 0 Active:         %d kB\nNode 0 Inactive:       %d kB\n",
			mi.TotalKB, mi.FreeKB, mi.TotalKB-mi.FreeKB, mi.ActiveKB, mi.InactiveKB), nil
	})

	// /sys/devices/system/cpu/cpu#/cpuidle/state#/{name,usage,time}.
	states := k.IdleStateSnapshot()
	for cpu := 0; cpu < k.Options().Cores; cpu++ {
		for si := range states {
			cpu, si := cpu, si
			base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpuidle/state%d", cpu, si)
			fs.static(base+"/name", states[si].Name+"\n")
			fs.add(base+"/usage", func(View) (string, error) {
				st := k.IdleStateSnapshot()
				return fmt.Sprintf("%d\n", int64(st[si].UsagePerCPU[cpu])), nil
			})
			fs.add(base+"/time", func(View) (string, error) {
				st := k.IdleStateSnapshot()
				return fmt.Sprintf("%d\n", int64(st[si].TimeUSPerCPU[cpu])), nil
			})
		}
	}

	// /sys/devices/platform/coretemp.0/hwmon/hwmon1/temp#_input: DTS
	// sensors in millidegrees. temp1 is the package, temp2..tempN+1 the
	// cores.
	if hw.HasCoretemp {
		fs.add("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input", func(v View) (string, error) {
			t, err := fs.thermal.CoreTempC(v, -1)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d\n", int64(t*1000)), nil
		})
		for c := 0; c < k.Options().Cores; c++ {
			c := c
			fs.add(fmt.Sprintf("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input", c+2),
				func(v View) (string, error) {
					t, err := fs.thermal.CoreTempC(v, c)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("%d\n", int64(t*1000)), nil
				})
		}
	}

	// /sys/class/powercap/intel-rapl — Case Study II. energy_uj goes
	// through the FS's EnergyProvider so the power-based namespace can
	// virtualize it later without changing paths.
	if hw.HasRAPL {
		domains := []struct {
			dir  string
			name string
			dom  power.Domain
		}{
			{"/sys/class/powercap/intel-rapl:0", "package-0", power.Package},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0", "core", power.Core},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:1", "dram", power.DRAM},
		}
		for _, d := range domains {
			d := d
			fs.static(d.dir+"/name", d.name+"\n")
			fs.add(d.dir+"/energy_uj", func(v View) (string, error) {
				uj, err := fs.energy.EnergyUJ(v, d.dom)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%d\n", uj), nil
			})
			fs.static(d.dir+"/max_energy_range_uj",
				fmt.Sprintf("%d\n", k.Meter().MaxEnergyRangeUJ()))
		}
	}

	// /sys/devices/system/cpu/online: topology, fleet-static.
	fs.static("/sys/devices/system/cpu/online", fmt.Sprintf("0-%d\n", k.Options().Cores-1))
}
