package pseudofs

import (
	"fmt"

	"repro/internal/power"
)

// buildSys wires the /sys tree: cgroup controller files, NUMA node stats,
// cpuidle residency, the coretemp hwmon sensors, and the Intel RAPL powercap
// interface of Case Study II.
//
// The RAPL energy_uj and cpuacct handlers are the hottest reads in the
// repo — the attacker monitor samples them thousands of times per campaign
// — so they render through strconv.Append* with zero allocations.
func (fs *FS) buildSys(hw Hardware) {
	k := fs.k

	// /sys/fs/cgroup/net_prio/net_prio.ifpriomap — Case Study I. The
	// handler renders the reader's own cgroup priority map, but iterates
	// init_net's device list (for_each_netdev_rcu(&init_net, …)), so a
	// container sees every physical interface of the host.
	// (LookupCgroup, not Cgroup: read handlers must never create table
	// entries — parallel cross-validation reads these concurrently.)
	fs.add("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", func(b []byte, v View) ([]byte, error) {
		cg, _ := k.LookupCgroup(v.CgroupPath)
		for _, dev := range k.HostNetDevices() { // BUG preserved: host list
			prio := 0
			if cg != nil && cg.IfPrioMap != nil {
				prio = cg.IfPrioMap[dev.Name]
			}
			b = append(b, dev.Name...)
			b = append(b, ' ')
			b = apInt(b, int64(prio))
			b = append(b, '\n')
		}
		return b, nil
	})

	// cpuacct usage for the reader's cgroup — properly delegated.
	fs.add("/sys/fs/cgroup/cpuacct/cpuacct.usage", func(b []byte, v View) ([]byte, error) {
		var usage int64
		if cg, ok := k.LookupCgroup(v.CgroupPath); ok {
			usage = int64(cg.CPUUsageNS)
		}
		b = apInt(b, usage)
		return append(b, '\n'), nil
	})

	// /sys/devices/system/node/node0/{numastat,vmstat,meminfo}: NUMA node
	// counters are host-global.
	fs.add("/sys/devices/system/node/node0/numastat", func(b []byte, _ View) ([]byte, error) {
		n := k.NUMASnapshot()
		b = append(b, "numa_hit "...)
		b = apInt(b, int64(n.Hit))
		b = append(b, "\nnuma_miss "...)
		b = apInt(b, int64(n.Miss))
		b = append(b, "\nnuma_foreign "...)
		b = apInt(b, int64(n.Foreign))
		b = append(b, "\ninterleave_hit "...)
		b = apInt(b, int64(n.InterleaveHit))
		b = append(b, "\nlocal_node "...)
		b = apInt(b, int64(n.LocalNode))
		b = append(b, "\nother_node "...)
		b = apInt(b, int64(n.OtherNode))
		return append(b, '\n'), nil
	})
	fs.add("/sys/devices/system/node/node0/vmstat", func(b []byte, _ View) ([]byte, error) {
		mi := k.MeminfoSnapshot()
		n := k.NUMASnapshot()
		b = append(b, "nr_free_pages "...)
		b = apUint(b, mi.FreeKB/4)
		b = append(b, "\nnr_alloc_batch 63\nnr_inactive_anon "...)
		b = apUint(b, mi.InactiveKB/4)
		b = append(b, "\nnr_active_anon "...)
		b = apUint(b, mi.ActiveKB/4)
		b = append(b, "\nnuma_hit "...)
		b = apInt(b, int64(n.Hit))
		b = append(b, "\nnuma_local "...)
		b = apInt(b, int64(n.LocalNode))
		return append(b, '\n'), nil
	})
	fs.add("/sys/devices/system/node/node0/meminfo", func(b []byte, _ View) ([]byte, error) {
		mi := k.MeminfoSnapshot()
		b = append(b, "Node 0 MemTotal:       "...)
		b = apUint(b, mi.TotalKB)
		b = append(b, " kB\nNode 0 MemFree:        "...)
		b = apUint(b, mi.FreeKB)
		b = append(b, " kB\nNode 0 MemUsed:        "...)
		b = apUint(b, mi.TotalKB-mi.FreeKB)
		b = append(b, " kB\nNode 0 Active:         "...)
		b = apUint(b, mi.ActiveKB)
		b = append(b, " kB\nNode 0 Inactive:       "...)
		b = apUint(b, mi.InactiveKB)
		return append(b, " kB\n"...), nil
	})

	// /sys/devices/system/cpu/cpu#/cpuidle/state#/{name,usage,time}.
	states := k.IdleStateSnapshot()
	for cpu := 0; cpu < k.Options().Cores; cpu++ {
		for si := range states {
			cpu, si := cpu, si
			base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpuidle/state%d", cpu, si)
			fs.static(base+"/name", states[si].Name+"\n")
			fs.add(base+"/usage", func(b []byte, _ View) ([]byte, error) {
				st := k.IdleStateSnapshot()
				b = apInt(b, int64(st[si].UsagePerCPU[cpu]))
				return append(b, '\n'), nil
			})
			fs.add(base+"/time", func(b []byte, _ View) ([]byte, error) {
				st := k.IdleStateSnapshot()
				b = apInt(b, int64(st[si].TimeUSPerCPU[cpu]))
				return append(b, '\n'), nil
			})
		}
	}

	// /sys/devices/system/cpu/cpu#/cpufreq/…: the DVFS governor's per-core
	// frequency interface. scaling_cur_freq and stats/total_trans are
	// host-global dynamic reads (the frequency channel — a container
	// observes the whole machine's load through its neighbours' P-state
	// transitions); the range/driver/governor files are fleet-static.
	gov := k.Freq()
	for cpu := 0; cpu < k.Options().Cores; cpu++ {
		cpu := cpu
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq", cpu)
		fs.add(base+"/scaling_cur_freq", func(b []byte, _ View) ([]byte, error) {
			b = apUint(b, k.Freq().CurKHz(cpu))
			return append(b, '\n'), nil
		})
		fs.add(base+"/stats/total_trans", func(b []byte, _ View) ([]byte, error) {
			b = apUint(b, k.Freq().Transitions(cpu))
			return append(b, '\n'), nil
		})
		fs.static(base+"/scaling_governor", gov.Name()+"\n")
		fs.static(base+"/scaling_available_governors", "performance powersave "+gov.Name()+"\n")
		fs.static(base+"/scaling_driver", "acpi-cpufreq\n")
		fs.static(base+"/scaling_min_freq", fmt.Sprintf("%d\n", gov.MinKHz()))
		fs.static(base+"/scaling_max_freq", fmt.Sprintf("%d\n", gov.MaxKHz()))
		fs.static(base+"/cpuinfo_min_freq", fmt.Sprintf("%d\n", gov.MinKHz()))
		fs.static(base+"/cpuinfo_max_freq", fmt.Sprintf("%d\n", gov.MaxKHz()))
	}

	// /sys/devices/platform/coretemp.0/hwmon/hwmon1/temp#_input: DTS
	// sensors in millidegrees. temp1 is the package, temp2..tempN+1 the
	// cores.
	if hw.HasCoretemp {
		fs.add("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input", func(b []byte, v View) ([]byte, error) {
			t, err := fs.thermal.CoreTempC(v, -1)
			if err != nil {
				return b, err
			}
			b = apInt(b, int64(t*1000))
			return append(b, '\n'), nil
		})
		for c := 0; c < k.Options().Cores; c++ {
			c := c
			fs.add(fmt.Sprintf("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input", c+2),
				func(b []byte, v View) ([]byte, error) {
					t, err := fs.thermal.CoreTempC(v, c)
					if err != nil {
						return b, err
					}
					b = apInt(b, int64(t*1000))
					return append(b, '\n'), nil
				})
		}
	}

	// /sys/class/powercap/intel-rapl — Case Study II. energy_uj goes
	// through the FS's EnergyProvider so the power-based namespace can
	// virtualize it later without changing paths.
	if hw.HasRAPL {
		domains := []struct {
			dir  string
			name string
			dom  power.Domain
		}{
			{"/sys/class/powercap/intel-rapl:0", "package-0", power.Package},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0", "core", power.Core},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:1", "dram", power.DRAM},
		}
		for _, d := range domains {
			d := d
			fs.static(d.dir+"/name", d.name+"\n")
			fs.add(d.dir+"/energy_uj", func(b []byte, v View) ([]byte, error) {
				uj, err := fs.energy.EnergyUJ(v, d.dom)
				if err != nil {
					return b, err
				}
				b = apUint(b, uj)
				return append(b, '\n'), nil
			})
			fs.static(d.dir+"/max_energy_range_uj",
				fmt.Sprintf("%d\n", k.Meter().MaxEnergyRangeUJ()))
		}
	}

	// /sys/devices/system/cpu/online: topology, fleet-static.
	fs.static("/sys/devices/system/cpu/online", fmt.Sprintf("0-%d\n", k.Options().Cores-1))
}
