package container

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func newHost(t *testing.T, seed int64) *Runtime {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "node", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	return NewRuntime(k, fs, DockerProfile())
}

func TestCreateAssemblesIsolation(t *testing.T) {
	r := newHost(t, 1)
	c := r.Create("web")
	if c.ID == "" || !strings.Contains(c.CgroupPath, "docker") {
		t.Fatalf("container %q cgroup %q", c.ID, c.CgroupPath)
	}
	// Fresh namespaces, distinct from init.
	if c.NS.ID(kernel.PID) == r.Kernel().InitNS().ID(kernel.PID) {
		t.Fatal("PID namespace shared with host")
	}
	// Perf group exists.
	if _, ok := r.Kernel().Perf().Read(c.CgroupPath); !ok {
		t.Fatal("perf group not created")
	}
	// Init task is pid 1 inside.
	hostname, err := c.ReadFile("/proc/sys/kernel/hostname")
	if err != nil || strings.TrimSpace(hostname) != "web" {
		t.Fatalf("hostname = %q err=%v", hostname, err)
	}
}

func TestContainerIDsUnique(t *testing.T) {
	r := newHost(t, 2)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		c := r.Create("x")
		if seen[c.ID] {
			t.Fatalf("duplicate id %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(r.List()) != 50 {
		t.Fatalf("list = %d", len(r.List()))
	}
}

func TestRunChargesCgroup(t *testing.T) {
	r := newHost(t, 3)
	c := r.Create("worker")
	c.Run(workload.Prime, 4)
	for i := 0; i < 10; i++ {
		r.Kernel().Tick(float64(i+1), 1)
	}
	usage, err := c.ReadFile("/sys/fs/cgroup/cpuacct/cpuacct.usage")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(usage) == "0" {
		t.Fatal("busy container shows zero cpuacct usage")
	}
	pc, ok := r.Kernel().Perf().Read(c.CgroupPath)
	if !ok || pc.Instructions == 0 {
		t.Fatalf("perf counters not accumulating: %+v ok=%v", pc, ok)
	}
}

func TestStopAndStopAll(t *testing.T) {
	r := newHost(t, 4)
	c := r.Create("w")
	t1 := c.Run(workload.Prime, 1)
	t2 := c.Run(workload.StressM64, 1)
	c.Stop(t1)
	if len(c.Tasks()) != 1 || c.Tasks()[0] != t2 {
		t.Fatalf("tasks after stop = %v", c.Tasks())
	}
	if r.Kernel().Task(t1.HostPID) != nil {
		t.Fatal("stopped task still scheduled")
	}
	c.StopAll()
	if len(c.Tasks()) != 0 {
		t.Fatal("StopAll left tasks")
	}
}

func TestDestroyTearsDown(t *testing.T) {
	r := newHost(t, 5)
	c := r.Create("victim")
	c.Run(workload.Prime, 2)
	nTasks := r.Kernel().NumTasks()
	if err := r.Destroy(c.ID); err != nil {
		t.Fatal(err)
	}
	if r.Kernel().NumTasks() != nTasks-3+1 { // workload + init gone
		t.Fatalf("tasks after destroy = %d (was %d)", r.Kernel().NumTasks(), nTasks)
	}
	if _, err := r.Get(c.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after destroy: %v", err)
	}
	if err := r.Destroy("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Destroy unknown: %v", err)
	}
}

func TestCrossContainerLeakThroughProc(t *testing.T) {
	r := newHost(t, 6)
	a := r.Create("attacker")
	v := r.Create("victim")
	v.Run(workload.Prime, 4)
	r.Kernel().Tick(1, 1)
	// The attacker reads host-global loadavg and sees the victim's load.
	la, err := a.ReadFile("/proc/loadavg")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(la, "0.00 0.00") {
		t.Fatalf("loadavg shows no foreign activity: %q", la)
	}
	// And both containers read the same boot_id — co-residence evidence.
	b1, _ := a.ReadFile("/proc/sys/kernel/random/boot_id")
	b2, _ := v.ReadFile("/proc/sys/kernel/random/boot_id")
	if b1 != b2 {
		t.Fatal("co-resident containers read different boot ids")
	}
}

func TestImplantTimerSignatureVisibleAcrossContainers(t *testing.T) {
	r := newHost(t, 7)
	a := r.Create("a")
	b := r.Create("b")
	a.ImplantTimerSignature("sig-deadbeef-42")
	got, err := b.ReadFile("/proc/timer_list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "sig-deadbeef-42") {
		t.Fatal("timer signature not visible across containers")
	}
}

func TestImplantLockSignatureVisibleAcrossContainers(t *testing.T) {
	r := newHost(t, 8)
	a := r.Create("a")
	b := r.Create("b")
	a.ImplantLockSignature(31337)
	got, err := b.ReadFile("/proc/locks")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "31337") {
		t.Fatal("lock signature not visible across containers")
	}
}

func TestExtraPolicyRulesMaskChannels(t *testing.T) {
	r := newHost(t, 9)
	c := r.Create("hardened", pseudofs.Rule{Pattern: "/proc/timer_list", Do: pseudofs.Deny})
	if _, err := c.ReadFile("/proc/timer_list"); !errors.Is(err, pseudofs.ErrDenied) {
		t.Fatalf("hardening rule inactive: %v", err)
	}
	// Runtime defaults still apply after extras.
	if _, err := c.ReadFile("/proc/kcore"); err == nil {
		t.Fatal("runtime default mask lost")
	}
}

func TestRunPinnedSetsAffinity(t *testing.T) {
	r := newHost(t, 10)
	c := r.Create("pinner")
	task := c.RunPinned(workload.Prime, []int{2, 3})
	if len(task.Pinned) != 2 || task.Pinned[0] != 2 {
		t.Fatalf("pinned = %v", task.Pinned)
	}
	if task.DemandCores != 2 {
		t.Fatalf("demand = %g", task.DemandCores)
	}
}

func TestLXCProfileDiffers(t *testing.T) {
	k := kernel.New(kernel.Options{Seed: 11})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	r := NewRuntime(k, fs, LXCProfile())
	c := r.Create("lxc1")
	// LXC masks nothing: kcore absent only because the file doesn't exist.
	if _, err := c.ReadFile("/proc/kcore"); !errors.Is(err, pseudofs.ErrNotExist) {
		t.Fatalf("lxc kcore: %v", err)
	}
	if _, err := c.ReadFile("/proc/sched_debug"); err != nil {
		t.Fatalf("lxc should not mask sched_debug: %v", err)
	}
}
