package container

import (
	"repro/internal/kernel"
	"repro/internal/pseudofs"
)

// RuntimeState is a point-in-time capture of a Runtime for the world
// snapshot machinery. Container identity (ID, namespaces, veth, base
// policy) is fixed at Create; what moves afterwards is the set of live
// containers, the id sequence, each container's mount pointer (swapped by
// ApplyPolicy/RevertPolicy) and its workload task list. Restore puts those
// back on the *same* Container pointers, so handles held by callers stay
// valid, and drops containers created after the capture — their kernel
// residue (tasks, cgroups, namespaces, veth devices) is rewound by the
// kernel's own Restore.
type RuntimeState struct {
	seq        int
	containers map[string]*Container
	state      map[string]containerSnap
}

type containerSnap struct {
	mount *pseudofs.Mount
	tasks []*kernel.Task
}

// Snapshot captures the runtime's mutable state.
func (r *Runtime) Snapshot() *RuntimeState {
	s := &RuntimeState{
		seq:        r.seq,
		containers: make(map[string]*Container, len(r.containers)),
		state:      make(map[string]containerSnap, len(r.containers)),
	}
	for id, c := range r.containers {
		s.containers[id] = c
		s.state[id] = containerSnap{
			mount: c.mount,
			tasks: append([]*kernel.Task(nil), c.tasks...),
		}
	}
	return s
}

// Restore rewinds the runtime to the captured state. Stop filters c.tasks
// in place, so each restore hands the container a fresh copy of the
// captured task list — one RuntimeState stays valid across any number of
// restores.
func (r *Runtime) Restore(s *RuntimeState) {
	r.seq = s.seq
	for id := range r.containers {
		if _, ok := s.containers[id]; !ok {
			delete(r.containers, id)
		}
	}
	for id, c := range s.containers {
		snap := s.state[id]
		r.containers[id] = c
		c.mount = snap.mount
		c.tasks = append([]*kernel.Task(nil), snap.tasks...)
	}
}
