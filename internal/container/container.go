// Package container implements the container runtime of the testbed: it
// assembles the kernel building blocks — a fresh namespace set, per-
// controller cgroups, and read-only procfs/sysfs mounts — into container
// instances, the way Docker or LXC do. Runtime profiles model each engine's
// default masking policy (in the paper's 2016-era defaults neither engine
// masked any of the Table I channels, which is why the local testbed leaks
// everything).
package container

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

// ErrNotFound is returned for operations on unknown container IDs.
var ErrNotFound = errors.New("container: not found")

// RuntimeProfile is a container engine's identity and default pseudo-file
// masking policy.
type RuntimeProfile struct {
	Engine string
	Policy pseudofs.Policy
}

// DockerProfile models Docker 1.12 defaults: a handful of procfs entries
// are masked (none of them the paper's channels).
func DockerProfile() RuntimeProfile {
	return RuntimeProfile{
		Engine: "docker",
		Policy: pseudofs.Policy{Name: "docker-default", Rules: []pseudofs.Rule{
			{Pattern: "/proc/kcore", Do: pseudofs.Deny},
			{Pattern: "/proc/keys", Do: pseudofs.Deny},
			{Pattern: "/proc/timer_stats", Do: pseudofs.Deny},
			{Pattern: "/sys/firmware/**", Do: pseudofs.Deny},
		}},
	}
}

// LXCProfile models LXC defaults, which mask nothing relevant either.
func LXCProfile() RuntimeProfile {
	return RuntimeProfile{Engine: "lxc", Policy: pseudofs.Policy{Name: "lxc-default"}}
}

// sandboxRules is the shared shape of the gVisor/Kata policies: the
// sandbox serves /proc and /sys from its own state, so no read reaches
// host kernel data and every classic channel goes Masked. The one
// passthrough is cpufreq — DVFS is machine-global hardware state a
// sandbox cannot virtualize away, which is exactly the surface the
// frequency channel (Dipta et al., arXiv 2404.10715) exploits.
func sandboxRules() []pseudofs.Rule {
	return []pseudofs.Rule{
		{Pattern: "/sys/devices/system/cpu/cpu*/cpufreq/*", Do: pseudofs.Allow},
		{Pattern: "/sys/devices/system/cpu/cpu*/cpufreq/stats/*", Do: pseudofs.Allow},
		{Pattern: "/proc/**", Do: pseudofs.Deny},
		{Pattern: "/sys/**", Do: pseudofs.Deny},
	}
}

// GVisorProfile models a gVisor (runsc) sandbox: the Sentry proxies every
// procfs/sysfs read and answers from application-layer state, never from
// the host kernel.
func GVisorProfile() RuntimeProfile {
	return RuntimeProfile{
		Engine: "gvisor",
		Policy: pseudofs.Policy{Name: "gvisor-sentry", Rules: sandboxRules()},
	}
}

// KataProfile models a Kata VM sandbox: the guest kernel has private
// procfs/sysfs trees, so host kernel state is unreachable. Deployments
// pair it with VM-shaped hardware (no RAPL, no coretemp — see
// cloud.RuntimeTargets), which is why its sensor channels read Absent
// where gVisor's read Masked.
func KataProfile() RuntimeProfile {
	return RuntimeProfile{
		Engine: "kata",
		Policy: pseudofs.Policy{Name: "kata-guest", Rules: sandboxRules()},
	}
}

// RootlessProfile models rootless Docker: the daemon runs unprivileged, so
// it cannot mount the net_prio cgroup controller (Case Study I's channel
// disappears) on top of the stock Docker masks.
func RootlessProfile() RuntimeProfile {
	p := DockerProfile()
	return RuntimeProfile{
		Engine: "rootless",
		Policy: pseudofs.Policy{
			Name: "rootless-default",
			Rules: append([]pseudofs.Rule{
				{Pattern: "/sys/fs/cgroup/net_prio/**", Do: pseudofs.Deny},
			}, p.Policy.Rules...),
		},
	}
}

// PodmanProfile models Podman's default seccomp/SELinux posture: Docker's
// masks plus denials of the scheduler-introspection files its default
// policy blocks.
func PodmanProfile() RuntimeProfile {
	p := DockerProfile()
	return RuntimeProfile{
		Engine: "podman",
		Policy: pseudofs.Policy{
			Name: "podman-default",
			Rules: append([]pseudofs.Rule{
				{Pattern: "/proc/timer_list", Do: pseudofs.Deny},
				{Pattern: "/proc/sched_debug", Do: pseudofs.Deny},
			}, p.Policy.Rules...),
		},
	}
}

// Runtime creates and manages containers on one host.
type Runtime struct {
	k       *kernel.Kernel
	fs      *pseudofs.FS
	profile RuntimeProfile

	containers map[string]*Container
	seq        int
}

// NewRuntime returns a runtime over the host's kernel and pseudo-fs tree.
func NewRuntime(k *kernel.Kernel, fs *pseudofs.FS, profile RuntimeProfile) *Runtime {
	return &Runtime{
		k:          k,
		fs:         fs,
		profile:    profile,
		containers: make(map[string]*Container),
	}
}

// Kernel returns the host kernel the runtime drives.
func (r *Runtime) Kernel() *kernel.Kernel { return r.k }

// FS returns the host's pseudo-filesystem tree.
func (r *Runtime) FS() *pseudofs.FS { return r.fs }

// Create starts a container: fresh namespaces, a cgroup under
// /<engine>/<id>, a perf accounting group, and procfs/sysfs mounted
// read-only under the runtime policy plus any extra rules (a cloud
// provider's hardening, stage-1 defense masks).
func (r *Runtime) Create(name string, extra ...pseudofs.Rule) *Container {
	r.seq++
	id := fmt.Sprintf("%s-%08x", name, uint32(r.seq)*2654435761)
	cgPath := fmt.Sprintf("/%s/%s", r.profile.Engine, id)
	ns := r.k.NewNSSet(name, cgPath)
	r.k.Cgroup(cgPath) // materialize
	r.k.Perf().CreateGroup(cgPath)

	policy := pseudofs.Policy{
		Name:  r.profile.Policy.Name,
		Rules: append(append([]pseudofs.Rule(nil), extra...), r.profile.Policy.Rules...),
	}
	c := &Container{
		ID:         id,
		Name:       name,
		CgroupPath: cgPath,
		NS:         ns,
		mount:      pseudofs.NewMount(r.fs, pseudofs.View{NS: ns, CgroupPath: cgPath}, policy),
		base:       policy,
		runtime:    r,
	}
	// Every container has an init process (pid 1 inside) and a host-side
	// veth leg with a randomized name (which leaks through the global
	// net-device iteration of Case Study I).
	c.init = r.k.Spawn(name+"-init", ns, cgPath, 0, workload.IdleLoop.Rates.Times(0))
	c.veth = fmt.Sprintf("veth%07x", uint32(r.seq)*2246822519%0xfffffff)
	r.k.AddHostNetDev(c.veth)
	r.containers[id] = c
	return c
}

// Destroy stops all tasks of the container and tears down its cgroup.
func (r *Runtime) Destroy(id string) error {
	c, ok := r.containers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	for _, t := range c.tasks {
		r.k.Exit(t.HostPID)
	}
	r.k.Exit(c.init.HostPID)
	r.k.RemoveHostNetDev(c.veth)
	r.k.RemoveCgroup(c.CgroupPath)
	delete(r.containers, id)
	return nil
}

// Get returns a container by ID.
func (r *Runtime) Get(id string) (*Container, error) {
	c, ok := r.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c, nil
}

// List returns the live containers (order unspecified).
func (r *Runtime) List() []*Container {
	out := make([]*Container, 0, len(r.containers))
	for _, c := range r.containers {
		out = append(out, c)
	}
	return out
}

// Container is one running container instance.
type Container struct {
	ID         string
	Name       string
	CgroupPath string
	NS         *kernel.NSSet

	mount   *pseudofs.Mount
	base    pseudofs.Policy // creation-time policy, restored by RevertPolicy
	runtime *Runtime
	init    *kernel.Task
	veth    string
	tasks   []*kernel.Task
}

// ApplyPolicy overlays rules ahead of the container's creation-time policy
// by remounting its pseudo-fs view — the live-rollout analogue of passing
// extra rules at Create. First match wins, so the overlay shadows the base
// policy wherever patterns overlap. The new mount is a distinct identity:
// incremental engines treat the container as unseen and re-validate it,
// which is exactly right — its observable surface just changed.
func (c *Container) ApplyPolicy(name string, rules []pseudofs.Rule) {
	p := pseudofs.Policy{
		Name:  name,
		Rules: append(append([]pseudofs.Rule(nil), rules...), c.base.Rules...),
	}
	c.mount = pseudofs.NewMount(c.runtime.fs, c.mount.View(), p)
}

// RevertPolicy restores the creation-time policy (canary rollback). A
// fresh mount is built even if no overlay is active, keeping the
// re-validation semantics identical to ApplyPolicy.
func (c *Container) RevertPolicy() {
	c.mount = pseudofs.NewMount(c.runtime.fs, c.mount.View(), c.base)
}

// ReadFile reads a pseudo-file exactly as a tenant process inside the
// container would: through the container's namespaces and masking policy.
func (c *Container) ReadFile(path string) (string, error) {
	return c.mount.Read(path)
}

// AppendFile is the zero-allocation variant of ReadFile: the content is
// appended to dst (same view, same masking policy). The attacker monitor
// samples the RAPL counter through this path thousands of times per
// campaign without generating garbage (attack.AppendProber).
func (c *Container) AppendFile(dst []byte, path string) ([]byte, error) {
	return c.mount.AppendRead(dst, path)
}

// Mount exposes the container's pseudo-fs mount (the detector drives it
// directly for full-tree walks).
func (c *Container) Mount() *pseudofs.Mount { return c.mount }

// Run starts the given workload profile on n cores inside the container and
// returns the task.
func (c *Container) Run(p workload.Profile, nCores float64) *kernel.Task {
	demand, rates := p.Scaled(nCores)
	t := c.runtime.k.Spawn(p.Name, c.NS, c.CgroupPath, demand, rates)
	t.RSSKB = p.RSSKBPerCore * uint64(nCores+0.5)
	c.tasks = append(c.tasks, t)
	return t
}

// RunPinned starts the workload bound to specific cores (the paper's
// taskset-based covert-channel experiment heats chosen cores this way).
func (c *Container) RunPinned(p workload.Profile, cores []int) *kernel.Task {
	t := c.Run(p, float64(len(cores)))
	t.Pinned = append([]int(nil), cores...)
	return t
}

// Stop terminates one task previously started with Run.
func (c *Container) Stop(t *kernel.Task) {
	c.runtime.k.Exit(t.HostPID)
	for i, x := range c.tasks {
		if x == t {
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			break
		}
	}
}

// StopAll terminates every workload task (the init task stays).
func (c *Container) StopAll() {
	for _, t := range c.tasks {
		c.runtime.k.Exit(t.HostPID)
	}
	c.tasks = nil
}

// ImplantTimerSignature starts a no-load task with the given unique name
// and an armed timer, making the signature visible in the host-global
// /proc/timer_list (and /proc/sched_debug).
func (c *Container) ImplantTimerSignature(signature string) *kernel.Task {
	t := c.runtime.k.Spawn(signature, c.NS, c.CgroupPath, 0.001, workload.IdleLoop.Rates.Times(0.001))
	t.HasTimer = true
	c.tasks = append(c.tasks, t)
	return t
}

// ImplantLockSignature takes a POSIX lock with an attacker-chosen inode
// number, visible in the global /proc/locks.
func (c *Container) ImplantLockSignature(inode uint64) kernel.FileLock {
	return c.runtime.k.AddFileLock(c.init, "WRITE", inode)
}

// PlantTimer and PlantLock are no-result conveniences satisfying
// coresidence.Implanter.

// PlantTimer implants a timer signature (see ImplantTimerSignature).
func (c *Container) PlantTimer(signature string) { c.ImplantTimerSignature(signature) }

// PlantLock implants a lock signature (see ImplantLockSignature).
func (c *Container) PlantLock(inode uint64) { c.ImplantLockSignature(inode) }

// Tasks returns the container's live workload tasks.
func (c *Container) Tasks() []*kernel.Task { return c.tasks }
