// Package cloud simulates a multi-tenancy container cloud at datacenter
// scale: racks of servers behind shared branch circuit breakers, a
// placement scheduler, utilization-based billing, benign tenant load with
// the diurnal swings of Fig. 2, and the five commercial provider profiles
// (CC1–CC5) whose differing channel-masking policies produce Table I.
package cloud

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/defense"
	"repro/internal/fastrand"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/simclock"
)

// ErrNoCapacity is returned when placement cannot find a server with spare
// cores.
var ErrNoCapacity = errors.New("cloud: no server with spare capacity")

// Config sizes a datacenter.
type Config struct {
	Racks          int
	ServersPerRack int
	CoresPerServer int
	Seed           int64

	// BreakerRatedW is the continuous rating of each rack's branch
	// breaker. Power oversubscription means this is well below the sum of
	// the servers' peak draw.
	BreakerRatedW float64

	// Provider selects the masking/hardware profile (see providers.go);
	// nil means the unhardened local-testbed profile.
	Provider *ProviderProfile

	// Benign controls the background tenant load; zero values select
	// defaults that reproduce Fig. 2's ~35% swing.
	Benign BenignConfig

	// Defended deploys the paper's stage-2 defense on every server:
	// namespace fixes for the leaky handlers plus a power-based namespace
	// (trained once, installed per host) that registers each tenant
	// container at launch.
	Defended bool

	// Chaos arms every server's observation surface with the deterministic
	// fault-injection layer (internal/chaos): flaky pseudo-file reads,
	// counter resets, sensor glitches. The zero Spec (the default) injects
	// nothing and adds no read-path cost.
	Chaos chaos.Spec

	// TickWorkers sets the worker count for the clock's per-server shard
	// phase (see internal/simclock's concurrency contract): every server's
	// Benign→Kernel pair runs on its own shard, so with n > 1 the servers
	// of one world tick concurrently. 0 resolves to GOMAXPROCS; 1 (and any
	// value, by the shard contract) produces byte-identical output.
	TickWorkers int
}

func (c *Config) fillDefaults() {
	if c.Racks == 0 {
		c.Racks = 1
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 8
	}
	if c.CoresPerServer == 0 {
		c.CoresPerServer = 8
	}
	if c.BreakerRatedW == 0 {
		c.BreakerRatedW = 1250
	}
	if c.Provider == nil {
		p := LocalTestbed()
		c.Provider = &p
	}
}

// Datacenter is the top-level simulation object.
type Datacenter struct {
	Clock *simclock.Clock
	Racks []*Rack

	cfg     Config
	rng     *fastrand.Rand
	billing *Billing
	nextCID int
	flash   *FlashDriver // non-nil when cfg.Benign.SharedFlash
}

// Rack groups servers behind one breaker.
type Rack struct {
	Name    string
	Servers []*Server
	Breaker *Breaker
}

// Power returns the rack's current wall power (sum over servers), which is
// what the PDU meters and the breaker sees.
func (r *Rack) Power() float64 {
	var w float64
	for _, s := range r.Servers {
		if !s.Down {
			w += s.Kernel.Meter().WallPower()
		}
	}
	return w
}

// Server is one physical host.
type Server struct {
	Name    string
	Rack    *Rack
	Kernel  *kernel.Kernel
	FS      *pseudofs.FS
	Runtime *container.Runtime
	Benign  *BenignLoad

	// PowerNS is the server's power-based namespace when the datacenter
	// is Defended, nil otherwise.
	PowerNS *powerns.Namespace

	// Down is set when the rack breaker trips (forced shutdown).
	Down bool

	// reservations maps container ID → reserved cores; the scheduler
	// admits by reservation, not instantaneous load.
	reservations map[string]float64
}

// ReservedCores returns the total cores reserved by placed containers.
func (s *Server) ReservedCores() float64 {
	var sum float64
	for _, c := range s.reservations {
		sum += c
	}
	return sum
}

// HostMount returns an unmasked host-context mount of the server's pseudo
// filesystems — the reference side of the detector's cross-validation.
func (s *Server) HostMount() *pseudofs.Mount {
	return pseudofs.NewMount(s.FS, pseudofs.HostView(s.Kernel), pseudofs.Policy{})
}

// New builds a datacenter and registers everything on a fresh simulation
// clock.
//
// Tick pipeline (see ARCHITECTURE.md, "tick pipeline"): the shared
// flash-crowd driver runs in the serial pre-phase; each server's
// Benign→Kernel pair is registered on its own clock shard (server state —
// kernel, RNG streams, power meter, chaos injectors — is disjoint per
// host, so shards may tick in parallel without changing a single byte);
// each rack's breaker runs in the serial post-phase, reading rack.Power()
// over fully-ticked servers in fixed rack order.
func New(cfg Config) *Datacenter {
	cfg.fillDefaults()
	dc := &Datacenter{
		Clock:   simclock.New(),
		cfg:     cfg,
		rng:     fastrand.New(cfg.Seed),
		billing: NewBilling(DefaultPricing()),
	}
	if cfg.TickWorkers != 1 {
		dc.Clock.SetWorkers(cfg.TickWorkers)
	}
	var flash *FlashDriver
	if cfg.Benign.SharedFlash {
		flash = NewFlashDriver(cfg.Benign, cfg.Seed+99)
		dc.Clock.OnTick(flash)
		dc.flash = flash
	}
	// Defended fleets train the power model once (identical physics on
	// every server) and deploy per host below.
	var model *powerns.Model
	if cfg.Defended {
		var err error
		model, _, err = powerns.Train(powerns.TrainOptions{Seed: cfg.Seed + 7})
		if err != nil {
			// Training is deterministic over a fixed benchmark set; a
			// failure is a programming error, not an operational state.
			panic(fmt.Sprintf("cloud: defense training failed: %v", err))
		}
	}
	for r := 0; r < cfg.Racks; r++ {
		rack := &Rack{
			Name:    fmt.Sprintf("rack-%d", r),
			Breaker: NewBreaker(cfg.BreakerRatedW),
		}
		// Servers in one rack were racked and powered on together, so
		// their boot wall-clocks cluster — the /proc/uptime proximity
		// signal of Section IV-C.
		rackEpoch := int64(1478649600 + r*86400*3)
		for s := 0; s < cfg.ServersPerRack; s++ {
			seed := cfg.Seed*1000 + int64(r*100+s)
			k := kernel.New(kernel.Options{
				Hostname:      fmt.Sprintf("node-%d-%d", r, s),
				Cores:         cfg.CoresPerServer,
				Seed:          seed,
				BootWallClock: rackEpoch + int64(s)*90, // ~sequential power-on
			})
			fs := pseudofs.Build(k, cfg.Provider.Hardware)
			srv := &Server{
				Name:         k.Options().Hostname,
				Rack:         rack,
				Kernel:       k,
				FS:           fs,
				Runtime:      container.NewRuntime(k, fs, cfg.Provider.Runtime),
				reservations: make(map[string]float64),
			}
			if cfg.Defended {
				defense.ApplyNamespaceFixes(fs)
				srv.PowerNS = powerns.New(k, model)
				srv.PowerNS.Install(fs)
			}
			// Chaos arms last so faults perturb whatever provider —
			// raw or defended — the tenant actually reads.
			chaos.Install(fs, cfg.Chaos, k.Options().Hostname)
			srv.Benign = NewBenignLoad(srv, cfg.Benign, seed+7)
			if flash != nil {
				srv.Benign.SetSharedFlash(flash)
			}
			rack.Servers = append(rack.Servers, srv)

			// Order matters within a server: benign load updates demand,
			// then the kernel integrates. Each server gets its own shard;
			// nothing a shard touches is reachable from another shard.
			shard := r*cfg.ServersPerRack + s
			dc.Clock.OnShardTick(shard, srv.Benign)
			dc.Clock.OnShardTick(shard, k)
		}
		dc.Racks = append(dc.Racks, rack)
		// The breaker is a cross-server reader: it must observe every
		// server of its rack fully ticked, in fixed order, so it runs in
		// the serial post-phase.
		dc.Clock.OnPostTick(simclock.TickerFunc(func(now, dt float64) {
			if rack.Breaker.Observe(rack.Power(), dt) {
				for _, s := range rack.Servers {
					s.Down = true
				}
			}
		}))
	}
	return dc
}

// Billing returns the datacenter's metering engine.
func (dc *Datacenter) Billing() *Billing { return dc.billing }

// Servers returns every server in rack order.
func (dc *Datacenter) Servers() []*Server {
	var out []*Server
	for _, r := range dc.Racks {
		out = append(out, r.Servers...)
	}
	return out
}

// Launch places a container for the tenant somewhere with spare capacity,
// like a cloud scheduler: candidates are servers whose current demand
// leaves room, picked pseudo-randomly (tenants cannot choose placement —
// that is exactly why the attack needs co-residence detection).
func (dc *Datacenter) Launch(tenant, name string, cores float64) (*Server, *container.Container, error) {
	servers := dc.Servers()
	// Random starting point, first fit.
	start := dc.rng.Intn(len(servers))
	for i := 0; i < len(servers); i++ {
		s := servers[(start+i)%len(servers)]
		if s.Down {
			continue
		}
		if s.ReservedCores()+cores <= float64(s.Kernel.Options().Cores) {
			dc.nextCID++
			c := s.Runtime.Create(fmt.Sprintf("%s-%s-%d", tenant, name, dc.nextCID),
				dc.cfg.Provider.ExtraRules...)
			s.reservations[c.ID] = cores
			if s.PowerNS != nil {
				s.PowerNS.Register(c.CgroupPath)
			}
			dc.billing.Open(tenant, c.ID, cores)
			return s, c, nil
		}
	}
	return nil, nil, ErrNoCapacity
}

// Terminate destroys a container, frees its reservation, and closes its
// billing meter.
func (dc *Datacenter) Terminate(s *Server, c *container.Container) error {
	delete(s.reservations, c.ID)
	if s.PowerNS != nil {
		s.PowerNS.Unregister(c.CgroupPath)
	}
	dc.billing.Close(c.ID, dc.Clock.Now())
	return s.Runtime.Destroy(c.ID)
}

// Breaker models a thermal-magnetic branch circuit breaker: an
// instantaneous magnetic trip at a large overload and an I²t thermal
// accumulator for sustained smaller overloads.
type Breaker struct {
	RatedW float64
	// MagneticFactor trips instantly at RatedW×factor.
	MagneticFactor float64
	// ThermalCapacity is the I²t budget in (overload ratio²)·seconds.
	ThermalCapacity float64

	accum   float64
	tripped bool
}

// NewBreaker returns a breaker with typical trip characteristics: instant
// trip at 1.45× rating, and e.g. a 30% sustained overload trips in ~40 s.
func NewBreaker(ratedW float64) *Breaker {
	return &Breaker{RatedW: ratedW, MagneticFactor: 1.45, ThermalCapacity: 28}
}

// Observe feeds one interval of load; it returns true exactly once, at the
// moment the breaker trips.
func (b *Breaker) Observe(powerW, dt float64) bool {
	if b.tripped {
		return false
	}
	ratio := powerW / b.RatedW
	if ratio >= b.MagneticFactor {
		b.tripped = true
		return true
	}
	if ratio > 1 {
		b.accum += (ratio*ratio - 1) * dt
		if b.accum >= b.ThermalCapacity {
			b.tripped = true
			return true
		}
	} else {
		// Cool down at half the heating rate.
		b.accum -= (1 - ratio*ratio) * dt * 0.5
		if b.accum < 0 {
			b.accum = 0
		}
	}
	return false
}

// Tripped reports whether the breaker has opened.
func (b *Breaker) Tripped() bool { return b.tripped }

// Reset closes the breaker again (maintenance action in tests/ablations).
func (b *Breaker) Reset() {
	b.tripped = false
	b.accum = 0
}

// Headroom returns how many Watts of margin remain before the magnetic
// threshold.
func (b *Breaker) Headroom(currentW float64) float64 {
	return math.Max(0, b.RatedW*b.MagneticFactor-currentW)
}
