package cloud

import "fmt"

// Pricing is a utilization-based billing model, mirroring the metered
// container offerings (ElasticHosts-style CPU metering, burstable
// instances) that Section IV-B argues make continuous power attacks
// expensive.
type Pricing struct {
	// PerInstanceHour is the flat charge for a running container.
	PerInstanceHour float64
	// PerCoreHour is the charge per core-hour of actual CPU use.
	PerCoreHour float64
}

// DefaultPricing reflects the paper's VMware OnDemand data point: a mostly
// idle instance costs a few dollars a month, a fully-busy one two orders of
// magnitude more — so cost is dominated by the metered core-hours.
func DefaultPricing() Pricing {
	return Pricing{PerInstanceHour: 0.004, PerCoreHour: 0.0145}
}

type meter struct {
	tenant    string
	openedAt  float64
	closedAt  float64
	open      bool
	coreHours float64
}

// Billing meters per-tenant instance-hours and core-hours.
type Billing struct {
	pricing Pricing
	meters  map[string]*meter
	now     float64
}

// NewBilling returns an empty billing engine.
func NewBilling(p Pricing) *Billing {
	return &Billing{pricing: p, meters: make(map[string]*meter)}
}

// Open starts metering a container for the tenant.
func (b *Billing) Open(tenant, containerID string, cores float64) {
	b.meters[containerID] = &meter{tenant: tenant, openedAt: b.now, open: true}
	_ = cores // capacity is free; only usage is metered
}

// Close stops metering a container at the given simulated time.
func (b *Billing) Close(containerID string, now float64) {
	if m, ok := b.meters[containerID]; ok && m.open {
		m.open = false
		m.closedAt = now
	}
	if now > b.now {
		b.now = now
	}
}

// ChargeCPU accrues metered CPU use for a container, in core-seconds.
func (b *Billing) ChargeCPU(containerID string, coreSeconds float64) {
	if m, ok := b.meters[containerID]; ok {
		m.coreHours += coreSeconds / 3600
	}
}

// Advance moves billing time forward (instance-hours accrue while open).
func (b *Billing) Advance(now float64) { b.now = now }

// TenantBill totals a tenant's charges at the current billing time.
func (b *Billing) TenantBill(tenant string) float64 {
	var total float64
	for _, m := range b.meters {
		if m.tenant != tenant {
			continue
		}
		end := m.closedAt
		if m.open {
			end = b.now
		}
		hours := (end - m.openedAt) / 3600
		if hours < 0 {
			hours = 0
		}
		total += hours*b.pricing.PerInstanceHour + m.coreHours*b.pricing.PerCoreHour
	}
	return total
}

// String summarizes the billing state.
func (b *Billing) String() string {
	return fmt.Sprintf("Billing{meters=%d, t=%.0fs}", len(b.meters), b.now)
}
