package cloud

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestDefendedCloudVirtualizesRAPL(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 2, Seed: 51, Defended: true})
	srv := dc.Racks[0].Servers[0]
	if srv.PowerNS == nil {
		t.Fatal("defended server has no power namespace")
	}
	spy := srv.Runtime.Create("spy")
	srv.PowerNS.Register(spy.CgroupPath)
	victim := srv.Runtime.Create("victim")
	srv.PowerNS.Register(victim.CgroupPath)
	victim.Run(workload.Prime, 8)
	dc.Clock.Run(30, 1)

	read := func() string {
		raw, err := spy.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(raw)
	}
	e1 := read()
	dc.Clock.Run(60, 1)
	e2 := read()
	// The spy's counter advances only at its own (idle) rate — roughly
	// 17 W × 30 s ≈ 5×10⁸ µJ, far below the host's ~100 W.
	if e1 == e2 {
		t.Fatal("spy counter frozen — should advance at idle rate")
	}
	if len(e2) > 0 && e2[0] == '-' {
		t.Fatal("negative counter")
	}
}

func TestDefendedLaunchRegistersAndTerminateUnregisters(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 52, Defended: true})
	srv, c, err := dc.Launch("tenant", "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if srv.PowerNS.Registered() != 1 {
		t.Fatalf("registered = %d", srv.PowerNS.Registered())
	}
	if err := dc.Terminate(srv, c); err != nil {
		t.Fatal(err)
	}
	if srv.PowerNS.Registered() != 0 {
		t.Fatalf("registered after terminate = %d", srv.PowerNS.Registered())
	}
}

func TestDefendedCloudClosesImplantChannels(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 53, Defended: true})
	srv := dc.Racks[0].Servers[0]
	a := srv.Runtime.Create("a")
	b := srv.Runtime.Create("b")
	a.ImplantTimerSignature("defended-sig")
	got, err := b.ReadFile("/proc/timer_list")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "defended-sig") {
		t.Fatal("stage-2 fixes not active on defended fleet")
	}
	// boot_id is per-namespace now.
	ba, _ := a.ReadFile("/proc/sys/kernel/random/boot_id")
	bb, _ := b.ReadFile("/proc/sys/kernel/random/boot_id")
	if ba == bb {
		t.Fatal("boot_id still shared on defended fleet")
	}
}

func TestUndefendedCloudHasNoPowerNS(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 54})
	if dc.Racks[0].Servers[0].PowerNS != nil {
		t.Fatal("undefended server should have no power namespace")
	}
}
