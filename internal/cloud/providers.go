package cloud

import (
	"repro/internal/container"
	"repro/internal/pseudofs"
)

// ProviderProfile captures everything that differs between the paper's five
// anonymized commercial clouds (CC1–CC5) and the local testbed: which
// container engine they run, what sensor hardware their fleet has, which
// channels they additionally mask, and which they rewrite to per-tenant
// subsets.
//
// The paper's Table I availability matrix is *generated* by running the
// leakage detector against these profiles — the profiles encode causes
// (masking policy, missing hardware), not the table itself.
type ProviderProfile struct {
	Name     string
	Runtime  container.RuntimeProfile
	Hardware pseudofs.Hardware
	// ExtraRules are the provider's hardening masks applied to every
	// tenant container on top of the engine defaults.
	ExtraRules []pseudofs.Rule
}

// LocalTestbed is the unhardened Docker host the paper first explores;
// every channel leaks.
func LocalTestbed() ProviderProfile {
	return ProviderProfile{
		Name:     "local",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.DefaultHardware(),
	}
}

// LocalLXC is the LXC variant of the local testbed.
func LocalLXC() ProviderProfile {
	return ProviderProfile{
		Name:     "local-lxc",
		Runtime:  container.LXCProfile(),
		Hardware: pseudofs.DefaultHardware(),
	}
}

// CC1 masks the scheduler-debug dump but little else.
func CC1() ProviderProfile {
	return ProviderProfile{
		Name:     "cc1",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.DefaultHardware(),
		ExtraRules: []pseudofs.Rule{
			{Pattern: "/proc/sched_debug", Do: pseudofs.Deny},
		},
	}
}

// CC2 also masks sched_debug (different engine generation, same posture).
func CC2() ProviderProfile {
	return ProviderProfile{
		Name:     "cc2",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.DefaultHardware(),
		ExtraRules: []pseudofs.Rule{
			{Pattern: "/proc/sched_debug", Do: pseudofs.Deny},
		},
	}
}

// CC3 hardens the sysctl fs tree and the net_prio controller mount but
// leaves sched_debug readable.
func CC3() ProviderProfile {
	return ProviderProfile{
		Name:     "cc3",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.DefaultHardware(),
		ExtraRules: []pseudofs.Rule{
			{Pattern: "/proc/sys/fs/**", Do: pseudofs.Deny},
			{Pattern: "/sys/fs/cgroup/net_prio/**", Do: pseudofs.Deny},
		},
	}
}

// CC4 runs an older fleet without RAPL or DTS sensors (pre-Sandy-Bridge
// Intel / AMD), masks timer_list and sched_debug, and does not mount the
// net_prio controller.
func CC4() ProviderProfile {
	return ProviderProfile{
		Name:     "cc4",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.Hardware{HasRAPL: false, HasCoretemp: false},
		ExtraRules: []pseudofs.Rule{
			{Pattern: "/proc/timer_list", Do: pseudofs.Deny},
			{Pattern: "/proc/sched_debug", Do: pseudofs.Deny},
			{Pattern: "/sys/fs/cgroup/net_prio/**", Do: pseudofs.Deny},
			{Pattern: "/sys/devices/**", Do: pseudofs.Deny},
			{Pattern: "/sys/class/**", Do: pseudofs.Deny},
		},
	}
}

// CC5 is the most hardened: it denies most host-wide state and rewrites
// the remaining high-value channels (the ◐ "partial" entries of Table I
// — only the tenant's own cores and memory appear), which advanced
// attackers can still exploit.
func CC5() ProviderProfile {
	return ProviderProfile{
		Name:     "cc5",
		Runtime:  container.DockerProfile(),
		Hardware: pseudofs.DefaultHardware(),
		ExtraRules: []pseudofs.Rule{
			{Pattern: "/proc/locks", Do: pseudofs.Deny},
			{Pattern: "/proc/zoneinfo", Do: pseudofs.Deny},
			{Pattern: "/proc/uptime", Do: pseudofs.Deny},
			{Pattern: "/proc/stat", Do: pseudofs.Filter, Transform: keepLines(6)},
			{Pattern: "/proc/meminfo", Do: pseudofs.Filter, Transform: keepLines(3)},
			{Pattern: "/proc/loadavg", Do: pseudofs.Deny},
			{Pattern: "/proc/cpuinfo", Do: pseudofs.Filter, Transform: keepLines(12)},
			{Pattern: "/proc/schedstat", Do: pseudofs.Deny},
			{Pattern: "/sys/fs/cgroup/net_prio/**", Do: pseudofs.Deny},
			{Pattern: "/sys/devices/**", Do: pseudofs.Deny},
			{Pattern: "/sys/class/**", Do: pseudofs.Deny},
		},
	}
}

// CommercialClouds returns CC1–CC5 in order.
func CommercialClouds() []ProviderProfile {
	return []ProviderProfile{CC1(), CC2(), CC3(), CC4(), CC5()}
}

// GVisorTarget is the local testbed re-run under a gVisor sandbox: the
// Sentry proxies procfs/sysfs, so every classic channel goes Masked while
// the cpufreq passthrough keeps the frequency channel alive.
func GVisorTarget() ProviderProfile {
	return ProviderProfile{
		Name:     "gvisor",
		Runtime:  container.GVisorProfile(),
		Hardware: pseudofs.DefaultHardware(),
	}
}

// KataTarget is the testbed under a Kata VM sandbox. The guest sees
// VM-shaped hardware — no RAPL, no DTS sensors — so its sensor channels
// read Absent where gVisor's read Masked.
func KataTarget() ProviderProfile {
	return ProviderProfile{
		Name:     "kata",
		Runtime:  container.KataProfile(),
		Hardware: pseudofs.Hardware{HasRAPL: false, HasCoretemp: false},
	}
}

// RootlessTarget is the testbed under rootless Docker.
func RootlessTarget() ProviderProfile {
	return ProviderProfile{
		Name:     "rootless",
		Runtime:  container.RootlessProfile(),
		Hardware: pseudofs.DefaultHardware(),
	}
}

// PodmanTarget is the testbed under Podman defaults.
func PodmanTarget() ProviderProfile {
	return ProviderProfile{
		Name:     "podman",
		Runtime:  container.PodmanProfile(),
		Hardware: pseudofs.DefaultHardware(),
	}
}

// RuntimeTargets returns the four modern-runtime inspection targets in
// matrix column order. They reuse the local testbed's fleet shape; only
// the engine profile (and, for Kata, the virtual hardware) changes — the
// point of the runtime matrix is isolating what the runtime masks.
func RuntimeTargets() []ProviderProfile {
	return []ProviderProfile{GVisorTarget(), KataTarget(), RootlessTarget(), PodmanTarget()}
}

// MatrixTargets returns the full column set of the runtime-aware Table I
// matrix: the five commercial clouds followed by the four runtime targets.
func MatrixTargets() []ProviderProfile {
	return append(CommercialClouds(), RuntimeTargets()...)
}

// keepLines returns a Transform that keeps only the first n lines of the
// content — modeling CC5's per-tenant rewrite, where a tenant sees only its
// own slice of the host's cores and memory.
func keepLines(n int) func(string) string {
	return func(content string) string {
		var out []byte
		lines := 0
		for i := 0; i < len(content); i++ {
			out = append(out, content[i])
			if content[i] == '\n' {
				lines++
				if lines >= n {
					break
				}
			}
		}
		return string(out)
	}
}
