package cloud

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestBreakerMagneticTrip(t *testing.T) {
	b := NewBreaker(1000)
	if b.Observe(1400, 1) || b.Tripped() {
		t.Fatal("below magnetic threshold should not trip instantly (thermal needs time)")
	}
	b.Reset()
	if !b.Observe(1500, 0.5) {
		t.Fatal("1.5x overload should trip magnetically")
	}
	if !b.Tripped() {
		t.Fatal("tripped flag not set")
	}
	// Observe after trip returns false (reports only once).
	if b.Observe(2000, 1) {
		t.Fatal("already-tripped breaker reported again")
	}
}

func TestBreakerThermalTrip(t *testing.T) {
	b := NewBreaker(1000)
	// 30% sustained overload: ratio²-1 = 0.69 per second, capacity 28 →
	// trips in ~41 s.
	var tripped bool
	var at float64
	for i := 0; i < 120 && !tripped; i++ {
		tripped = b.Observe(1300, 1)
		at = float64(i)
	}
	if !tripped {
		t.Fatal("sustained overload never tripped")
	}
	if at < 25 || at > 70 {
		t.Fatalf("thermal trip after %g s, want ≈ 40 s", at)
	}
}

func TestBreakerCoolsDown(t *testing.T) {
	b := NewBreaker(1000)
	for i := 0; i < 20; i++ {
		b.Observe(1200, 1) // heat for 20 s (not enough to trip)
	}
	for i := 0; i < 120; i++ {
		b.Observe(500, 1) // long cool-down
	}
	// Now the accumulator must be drained: another 20 s at 1.2x must not
	// trip (it would if heat persisted).
	for i := 0; i < 20; i++ {
		if b.Observe(1200, 1) {
			t.Fatal("breaker retained heat after cool-down")
		}
	}
}

func TestBreakerHeadroom(t *testing.T) {
	b := NewBreaker(1000)
	if h := b.Headroom(450); h != 1000 {
		t.Fatalf("headroom = %g, want 1000", h)
	}
	if h := b.Headroom(2000); h != 0 {
		t.Fatalf("headroom = %g, want 0", h)
	}
}

func TestDatacenterConstruction(t *testing.T) {
	dc := New(Config{Racks: 2, ServersPerRack: 4, Seed: 1})
	if len(dc.Racks) != 2 || len(dc.Servers()) != 8 {
		t.Fatalf("racks=%d servers=%d", len(dc.Racks), len(dc.Servers()))
	}
	// Same-rack servers boot close together; different racks days apart.
	r0 := dc.Racks[0].Servers
	r1 := dc.Racks[1].Servers
	d0 := r0[1].Kernel.Options().BootWallClock - r0[0].Kernel.Options().BootWallClock
	dAcross := r1[0].Kernel.Options().BootWallClock - r0[0].Kernel.Options().BootWallClock
	if d0 < 0 {
		d0 = -d0
	}
	if d0 > 3600 {
		t.Fatalf("same-rack boot gap %d s too large", d0)
	}
	if dAcross < 86400 {
		t.Fatalf("cross-rack boot gap %d s too small", dAcross)
	}
}

func TestBenignLoadDiurnalSwing(t *testing.T) {
	// One server, three simulated days at 30 s steps: aggregate power must
	// show a Fig. 2-like swing (paper: 34.7% over a week for 8 servers).
	dc := New(Config{Racks: 1, ServersPerRack: 8, Seed: 2})
	var series []float64
	day := 24 * 3600.0
	for now := 30.0; now <= 3*day; now += 30 {
		dc.Clock.Advance(30)
		var w float64
		for _, s := range dc.Servers() {
			w += s.Kernel.Meter().WallPower()
		}
		series = append(series, w)
	}
	sum := stats.Summarize(series)
	swing := (sum.Max - sum.Min) / sum.Max
	if swing < 0.20 {
		t.Fatalf("aggregate power swing %.1f%%, want ≥ 20%%", swing*100)
	}
	if sum.Min < 400 || sum.Max > 2000 {
		t.Fatalf("8-server power band [%0.f, %0.f] W implausible", sum.Min, sum.Max)
	}
}

func TestBenignLoadDeterministic(t *testing.T) {
	run := func() float64 {
		dc := New(Config{Racks: 1, ServersPerRack: 2, Seed: 3})
		dc.Clock.Run(3600, 30)
		return dc.Racks[0].Power()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %g vs %g", a, b)
	}
}

func TestLaunchPlacesWithCapacity(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 2, CoresPerServer: 4, Seed: 4})
	placed := map[string]int{}
	var containers int
	for i := 0; i < 100; i++ {
		s, c, err := dc.Launch("tenant-a", "probe", 1)
		if errors.Is(err, ErrNoCapacity) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		placed[s.Name]++
		containers++
		_ = c
	}
	if containers == 0 || containers > 8 {
		t.Fatalf("placed %d containers on 2×4 cores", containers)
	}
	if len(placed) < 2 {
		t.Fatalf("placement never spread: %v", placed)
	}
}

func TestTerminateFreesCapacity(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, CoresPerServer: 4, Seed: 5})
	s, c, err := dc.Launch("t", "a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dc.Launch("t", "b", 4); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected no capacity, got %v", err)
	}
	if err := dc.Terminate(s, c); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dc.Launch("t", "b", 4); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
}

func TestLaunchAppliesProviderMasks(t *testing.T) {
	p := CC1()
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 6, Provider: &p})
	_, c, err := dc.Launch("t", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/proc/sched_debug"); err == nil {
		t.Fatal("CC1 should mask sched_debug")
	}
	if _, err := c.ReadFile("/proc/timer_list"); err != nil {
		t.Fatalf("CC1 should leave timer_list open: %v", err)
	}
}

func TestCC4LacksRAPL(t *testing.T) {
	p := CC4()
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 7, Provider: &p})
	_, c, err := dc.Launch("t", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj"); err == nil {
		t.Fatal("CC4 fleet has no RAPL; energy_uj must be unavailable")
	}
}

func TestCC5PartialFilter(t *testing.T) {
	p := CC5()
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 8, Provider: &p})
	srv, c, err := dc.Launch("t", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	dc.Clock.Advance(1)
	got, err := c.ReadFile("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	full, err := pseudoHostRead(srv, "/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	if got == "" || got == full {
		t.Fatalf("CC5 meminfo should be partial: got %d bytes vs host %d", len(got), len(full))
	}
	if !strings.HasPrefix(full, got) {
		t.Fatal("partial view should be a prefix slice of host content")
	}
}

// pseudoHostRead reads a path from the host (unmasked) view of a server.
func pseudoHostRead(s *Server, path string) (string, error) {
	return s.HostMount().Read(path)
}

func TestBreakerTripsTakeRackDown(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 8, Seed: 9, BreakerRatedW: 300}) // absurdly tight
	// Saturate every server.
	for _, s := range dc.Servers() {
		c := s.Runtime.Create("attack")
		c.Run(workload.Prime, 8)
	}
	dc.Clock.Run(600, 1)
	if !dc.Racks[0].Breaker.Tripped() {
		t.Fatal("overloaded breaker never tripped")
	}
	for _, s := range dc.Servers() {
		if !s.Down {
			t.Fatal("server survived a tripped breaker")
		}
	}
	// Down servers stop contributing power.
	if p := dc.Racks[0].Power(); p != 0 {
		t.Fatalf("rack power after outage = %g", p)
	}
}

func TestBillingMetersUsage(t *testing.T) {
	b := NewBilling(DefaultPricing())
	b.Open("mallory", "c1", 4)
	b.ChargeCPU("c1", 3600*4) // 4 core-hours
	b.Close("c1", 7200)       // 2 instance-hours
	bill := b.TenantBill("mallory")
	want := 2*0.004 + 4*0.0145
	if diff := bill - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("bill = %g, want %g", bill, want)
	}
	if b.TenantBill("innocent") != 0 {
		t.Fatal("wrong tenant billed")
	}
	if b.String() == "" {
		t.Fatal("String empty")
	}
}

func TestBillingOpenMeterAccruesWithAdvance(t *testing.T) {
	b := NewBilling(DefaultPricing())
	b.Open("t", "c1", 1)
	b.Advance(3600)
	if bill := b.TenantBill("t"); bill <= 0 {
		t.Fatalf("open meter accrued nothing: %g", bill)
	}
}

func TestProviderListComplete(t *testing.T) {
	ccs := CommercialClouds()
	if len(ccs) != 5 {
		t.Fatalf("clouds = %d", len(ccs))
	}
	names := map[string]bool{}
	for _, p := range ccs {
		names[p.Name] = true
	}
	for _, want := range []string{"cc1", "cc2", "cc3", "cc4", "cc5"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestSharedFlashSynchronizesServers(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 4, Seed: 12,
		Benign: BenignConfig{FlashCrowdPerDay: 400, FlashMinS: 120, FlashMaxS: 240, SharedFlash: true}})
	// Find a moment with an active shared flash; all servers' demand jumps
	// together.
	var maxCorrDemand float64
	for i := 0; i < 1200; i++ {
		dc.Clock.Advance(1)
		d0 := dc.Racks[0].Servers[0].Benign.Demand()
		d1 := dc.Racks[0].Servers[1].Benign.Demand()
		if d0 > maxCorrDemand {
			maxCorrDemand = d0
		}
		// When one server flashes, siblings must not be at baseline: the
		// boost is shared. Allow noise; check only at clear flash moments.
		if d0 > 4.5 && d1 < 2.0 {
			t.Fatalf("t=%d: server0 demand %.1f but server1 %.1f — flash not shared", i, d0, d1)
		}
	}
	if maxCorrDemand < 4.0 {
		t.Fatal("no flash event observed in 20 minutes at 400/day")
	}
}

func TestBenignDemandAccessor(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 13})
	dc.Clock.Advance(1)
	if d := dc.Racks[0].Servers[0].Benign.Demand(); d <= 0 {
		t.Fatalf("demand = %g", d)
	}
}

func TestDatacenterBillingAccessor(t *testing.T) {
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 14})
	if dc.Billing() == nil {
		t.Fatal("billing engine missing")
	}
	_, c, err := dc.Launch("t", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	dc.Billing().ChargeCPU(c.ID, 3600)
	if bill := dc.Billing().TenantBill("t"); bill <= 0 {
		t.Fatalf("bill = %g", bill)
	}
}

func TestLocalLXCProfile(t *testing.T) {
	p := LocalLXC()
	dc := New(Config{Racks: 1, ServersPerRack: 1, Seed: 15, Provider: &p})
	_, c, err := dc.Launch("t", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	// LXC masks nothing: every Table I channel file readable.
	if _, err := c.ReadFile("/proc/sched_debug"); err != nil {
		t.Fatalf("lxc masked sched_debug: %v", err)
	}
}
