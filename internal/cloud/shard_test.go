package cloud

// Differential byte-identity suite for the sharded tick pipeline: the same
// world, ticked with 1 worker and with 8 workers, must be indistinguishable
// byte for byte — across chaos-off and chaos-armed observation surfaces,
// and across undefended and defended fleets. The fingerprint deliberately
// mixes every class of observable: raw kernel/meter state, host-context
// pseudo-file renders, container-context renders through the masking
// policy (and the power namespace when defended), breaker state, and
// billing, so a divergence anywhere in the shard phase shows up here.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/workload"
)

// shardFingerprintPaths are read per server for the fingerprint — a mix of
// hot counters, padded tables, and namespaced files.
var shardFingerprintPaths = []string{
	"/proc/uptime",
	"/proc/stat",
	"/proc/loadavg",
	"/proc/meminfo",
	"/proc/interrupts",
	"/proc/sched_debug",
	"/sys/class/powercap/intel-rapl:0/energy_uj",
	"/sys/fs/cgroup/cpuacct/cpuacct.usage",
}

// worldFingerprint builds a two-rack datacenter, places tenant load, runs
// it for a while (interleaving container reads mid-run so the read path —
// including any chaos injectors — executes in a fixed serial order), and
// renders everything observable into one string.
func worldFingerprint(t *testing.T, workers int, defended bool, spec chaos.Spec) string {
	t.Helper()
	dc := New(Config{
		Racks:          2,
		ServersPerRack: 3,
		CoresPerServer: 4,
		Seed:           1362,
		Defended:       defended,
		Chaos:          spec,
		TickWorkers:    workers,
		Benign:         BenignConfig{SharedFlash: true},
	})

	_, c1, err := dc.Launch("acme", "web", 1)
	if err != nil {
		t.Fatalf("launch web: %v", err)
	}
	c1.Run(workload.Prime, 1)
	_, c2, err := dc.Launch("evil", "probe", 0.5)
	if err != nil {
		t.Fatalf("launch probe: %v", err)
	}
	c2.Run(workload.IdleLoop, 0.25)

	var b strings.Builder
	readAll := func(tag string) {
		// Container-context reads: through policy, namespaces, chaos and
		// (when defended) the power namespace. Chaos makes some reads fail
		// transiently — the error text is part of the fingerprint.
		for _, c := range []struct {
			name string
			rd   interface {
				ReadFile(string) (string, error)
			}
		}{{"web", c1}, {"probe", c2}} {
			for _, p := range shardFingerprintPaths {
				s, err := c.rd.ReadFile(p)
				fmt.Fprintf(&b, "%s %s %s err=%v\n%s", tag, c.name, p, err, s)
			}
		}
	}

	// Interleave ticking with reads: 3 windows of 40 s at dt=1 s.
	for w := 0; w < 3; w++ {
		dc.Clock.Run(float64(w+1)*40, 1)
		readAll(fmt.Sprintf("t=%d", (w+1)*40))
	}

	// Raw per-server state in rack order.
	for _, s := range dc.Servers() {
		fmt.Fprintf(&b, "%s down=%v wall=%.9f reserved=%.3f\n",
			s.Name, s.Down, s.Kernel.Meter().WallPower(), s.ReservedCores())
		host := s.HostMount()
		for _, p := range shardFingerprintPaths {
			hs, err := host.Read(p)
			fmt.Fprintf(&b, "host %s %s err=%v\n%s", s.Name, p, err, hs)
		}
	}
	for _, r := range dc.Racks {
		fmt.Fprintf(&b, "%s power=%.9f tripped=%v\n", r.Name, r.Power(), r.Breaker.Tripped())
	}
	fmt.Fprintf(&b, "bill acme=%.9f evil=%.9f\n",
		dc.Billing().TenantBill("acme"), dc.Billing().TenantBill("evil"))
	return b.String()
}

func TestShardedTickByteIdentityAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name     string
		defended bool
		spec     chaos.Spec
	}{
		{"undefended/chaos-off", false, chaos.Spec{}},
		{"undefended/chaos-armed", false, chaos.Spec{Rate: 0.10, Seed: 99}},
		{"defended/chaos-off", true, chaos.Spec{}},
		{"defended/chaos-armed", true, chaos.Spec{Rate: 0.10, Seed: 99}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := worldFingerprint(t, 1, tc.defended, tc.spec)
			for _, workers := range []int{2, 8} {
				parallel := worldFingerprint(t, workers, tc.defended, tc.spec)
				if parallel != serial {
					t.Fatalf("workers=%d fingerprint diverges from serial\nfirst difference near: %q",
						workers, firstLineDiff(serial, parallel))
				}
			}
		})
	}
}

// firstLineDiff returns the first line where a and b differ.
func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
