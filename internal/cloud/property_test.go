package cloud

import (
	"testing"
	"testing/quick"

	"repro/internal/container"
)

// TestPropertyBillingNonNegativeAndMonotone: bills never go negative and
// never shrink as usage accrues.
func TestPropertyBillingNonNegativeAndMonotone(t *testing.T) {
	f := func(charges []uint16) bool {
		b := NewBilling(DefaultPricing())
		b.Open("t", "c1", 4)
		prev := 0.0
		now := 0.0
		for _, ch := range charges {
			now += float64(ch%600) + 1
			b.Advance(now)
			b.ChargeCPU("c1", float64(ch%3600))
			bill := b.TenantBill("t")
			if bill < prev-1e-12 || bill < 0 {
				return false
			}
			prev = bill
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBillingClosedMeterFreezes: once closed, a meter's
// instance-hours stop accruing.
func TestPropertyBillingClosedMeterFreezes(t *testing.T) {
	f := func(closeAtRaw, laterRaw uint16) bool {
		closeAt := float64(closeAtRaw%7200) + 1
		later := closeAt + float64(laterRaw%7200) + 1
		b := NewBilling(DefaultPricing())
		b.Open("t", "c1", 1)
		b.Close("c1", closeAt)
		atClose := b.TenantBill("t")
		b.Advance(later)
		return b.TenantBill("t") == atClose
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBreakerNeverTripsUnderRating: any load pattern strictly
// below the continuous rating must never trip the breaker.
func TestPropertyBreakerNeverTripsUnderRating(t *testing.T) {
	f := func(loads []uint16) bool {
		b := NewBreaker(1000)
		for _, l := range loads {
			if b.Observe(float64(l%1000), 1) {
				return false
			}
		}
		return !b.Tripped()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBreakerAlwaysTripsMagnetic: any single observation at or
// above the magnetic threshold trips.
func TestPropertyBreakerAlwaysTripsMagnetic(t *testing.T) {
	f := func(overRaw uint16) bool {
		b := NewBreaker(1000)
		load := 1450 + float64(overRaw)
		return b.Observe(load, 0.1) && b.Tripped()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReservationsConserved: any launch/terminate sequence keeps
// per-server reservations within capacity and consistent with the
// containers placed.
func TestPropertyReservationsConserved(t *testing.T) {
	f := func(ops []uint8) bool {
		dc := New(Config{Racks: 1, ServersPerRack: 2, CoresPerServer: 4, Seed: 11})
		type placed struct {
			s *Server
			c *container.Container
		}
		var live []placed
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				cores := float64(op%3) + 1
				s, c, err := dc.Launch("t", "x", cores)
				if err != nil {
					continue // capacity exhausted is fine
				}
				live = append(live, placed{s: s, c: c})
			} else {
				p := live[0]
				live = live[1:]
				if err := dc.Terminate(p.s, p.c); err != nil {
					return false
				}
			}
			for _, s := range dc.Servers() {
				if s.ReservedCores() > float64(s.Kernel.Options().Cores)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
