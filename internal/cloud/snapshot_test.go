package cloud

// Differential suite for the copy-on-write world snapshots: a world that is
// captured, mutated arbitrarily, and restored must be byte-for-byte
// indistinguishable — across the FULL pseudo-file surface of every server
// and container, not a sampled path list — from a freshly built world
// driven through the same pre-capture history. The mutation stream is
// pseudo-random but fixed-seed, mixing launches, workload starts and stops,
// policy applies/reverts, signature implants, and irregular tick windows;
// the same suite runs at tick worker counts 1 and 8 and across chaos-off,
// chaos-armed, and defended worlds, so the snapshot machinery is exercised
// against every state-holder the tick pipeline touches (kernel, governor,
// meter, perf monitor, chaos streams, power namespace, billing, breakers).
//
// /proc/sys/kernel/random/uuid is deliberately NOT excluded from the
// render: both worlds read it at the same stream positions, so it checks
// that Restore rewinds the uuid RNG exactly. Likewise chaos-armed reads
// advance fault streams per read — identical fingerprints prove those
// rewind too.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

// snapWorld pairs a datacenter with the driver-side handle list the op
// stream mutates. The handle list is part of the replayed state: restoring
// the datacenter also restores a saved copy of the list, mirroring how a
// caller of the experiment pool holds container handles across restores.
type snapWorld struct {
	dc   *Datacenter
	live []*container.Container
}

func newSnapWorld(workers int, defended bool, spec chaos.Spec) *snapWorld {
	return &snapWorld{dc: New(Config{
		Racks:          1,
		ServersPerRack: 2,
		CoresPerServer: 4,
		Seed:           4242,
		Defended:       defended,
		Chaos:          spec,
		TickWorkers:    workers,
		Benign:         BenignConfig{SharedFlash: true},
	})}
}

// apply drives ops[from:to] against the world. Each op consults only its
// own byte and the world's deterministic state, so two worlds fed the same
// window from equal states stay equal.
func (w *snapWorld) apply(ops []byte, from, to int) {
	pick := func(op byte) *container.Container {
		return w.live[int(op>>3)%len(w.live)]
	}
	for i := from; i < to; i++ {
		op := ops[i]
		switch op % 8 {
		case 0:
			if _, c, err := w.dc.Launch(fmt.Sprintf("t%02d", i), fmt.Sprintf("c%02d", i), 0.5); err == nil {
				w.live = append(w.live, c)
			}
		case 1:
			if len(w.live) > 0 {
				pick(op).Run(workload.Prime, 0.5)
			}
		case 2:
			if len(w.live) > 0 {
				pick(op).StopAll()
			}
		case 3:
			if len(w.live) > 0 {
				pick(op).ApplyPolicy("diff", []pseudofs.Rule{
					{Pattern: "/proc/diskstats", Do: pseudofs.Deny},
					{Pattern: "/proc/net/*", Do: pseudofs.Empty},
				})
			}
		case 4:
			if len(w.live) > 0 {
				pick(op).RevertPolicy()
			}
		case 5:
			if len(w.live) > 0 {
				pick(op).PlantTimer(fmt.Sprintf("sig-%d", i))
			}
		case 6:
			w.dc.Clock.Run(w.dc.Clock.Now()+5, 1)
		case 7:
			w.dc.Clock.Run(w.dc.Clock.Now()+0.37, 0.37)
		}
	}
}

// fingerprint renders every registered pseudo-file path of every server
// (host context) and every live container (policied, namespaced, defended
// context), plus the non-file observables a restore must also rewind.
func (w *snapWorld) fingerprint() string {
	var b strings.Builder
	for _, s := range w.dc.Servers() {
		host := s.HostMount()
		for _, p := range host.Paths() {
			v, err := host.Read(p)
			fmt.Fprintf(&b, "host %s %s err=%v\n%s", s.Name, p, err, v)
		}
		fmt.Fprintf(&b, "%s down=%v wall=%.9f reserved=%.3f\n",
			s.Name, s.Down, s.Kernel.Meter().WallPower(), s.ReservedCores())
	}
	for i, c := range w.live {
		for _, p := range c.Mount().Paths() {
			v, err := c.ReadFile(p)
			fmt.Fprintf(&b, "cont %d %s err=%v\n%s", i, p, err, v)
		}
		fmt.Fprintf(&b, "cont %d tasks=%d\n", i, len(c.Tasks()))
	}
	for _, r := range w.dc.Racks {
		fmt.Fprintf(&b, "%s power=%.9f tripped=%v\n", r.Name, r.Power(), r.Breaker.Tripped())
	}
	return b.String()
}

func TestSnapshotRestoreMatchesFreshWorld(t *testing.T) {
	// Fixed-seed random op stream: [0:pre) is shared history, [pre:len)
	// is the discarded mutation window (and later the shared replay).
	rnd := rand.New(rand.NewSource(0x5eed))
	ops := make([]byte, 48)
	rnd.Read(ops)
	const pre = 28

	cases := []struct {
		name     string
		defended bool
		spec     chaos.Spec
	}{
		{"undefended/chaos-off", false, chaos.Spec{}},
		{"undefended/chaos-armed", false, chaos.Spec{Rate: 0.10, Seed: 99}},
		{"defended/chaos-off", true, chaos.Spec{}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				workers := workers
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					// World A: shared history, capture, junk mutations, rewind.
					a := newSnapWorld(workers, tc.defended, tc.spec)
					a.apply(ops, 0, pre)
					snap := a.dc.Snapshot()
					savedLive := append([]*container.Container(nil), a.live...)
					a.apply(ops, pre, len(ops))
					a.dc.Restore(snap)
					a.live = savedLive
					fpA := a.fingerprint()

					// World B: fresh build through the shared history only.
					b := newSnapWorld(workers, tc.defended, tc.spec)
					b.apply(ops, 0, pre)
					if fpB := b.fingerprint(); fpA != fpB {
						t.Fatalf("restored world diverges from fresh world\nfirst difference near: %s",
							firstLineDiff(fpB, fpA))
					}

					// The same capture must be restorable again — including
					// rewinding the reads the fingerprint itself performed.
					a.dc.Restore(snap)
					a.live = append(a.live[:0], savedLive...)
					if fp2 := a.fingerprint(); fp2 != fpA {
						t.Fatalf("second restore diverges from first\nfirst difference near: %s",
							firstLineDiff(fpA, fp2))
					}

					// Replay continues identically after a restore: both
					// worlds now run the once-discarded window for real.
					a.apply(ops, pre, len(ops))
					b.apply(ops, pre, len(ops))
					fpA2, fpB2 := a.fingerprint(), b.fingerprint()
					if fpA2 != fpB2 {
						t.Fatalf("post-restore replay diverges from fresh replay\nfirst difference near: %s",
							firstLineDiff(fpB2, fpA2))
					}
				})
			}
		})
	}
}
