package cloud

import (
	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/fastrand"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/simclock"
)

// WorldState is a copy-on-write capture of an entire datacenter: the
// simulation clock, the placement RNG, billing, every rack's breaker, and
// for every server the full kernel snapshot plus FS, runtime, power
// namespace, benign-load, and chaos-layer state. Restoring a WorldState
// rewinds the world so precisely that every subsequent tick and read is
// byte-identical to a freshly built datacenter driven to the same point —
// the property the seed sweeps depend on to replace rebuilds with
// restores.
//
// Restore is in-place: the Datacenter, Server, Rack, and Container
// objects keep their identity, so handles taken before the capture stay
// valid. Anything created after the capture (containers, billing meters,
// clock events) is dropped. Incremental engines built over a server's
// mounts must be discarded after a Restore — the epoch clocks rewind with
// the kernel.
type WorldState struct {
	clock   *simclock.ClockState
	rng     fastrand.State
	nextCID int

	billingNow    float64
	billingMeters map[string]meter

	flash *flashSnap

	racks   []breakerSnap
	servers []serverSnap
}

type flashSnap struct {
	rng        fastrand.State
	flashUntil float64
	boost      float64
}

type breakerSnap struct {
	accum   float64
	tripped bool
}

type serverSnap struct {
	kernel  *kernel.Snapshot
	fs      *pseudofs.FSState
	runtime *container.RuntimeState
	powerNS *powerns.NamespaceState

	benignRNG  fastrand.State
	flashUntil float64
	flashBoost float64

	down         bool
	reservations map[string]float64

	chaosInj *chaos.InjectorState
	chaosCtr *chaos.CountersState
	chaosDTS *chaos.ThermalState
}

// Snapshot captures the datacenter's complete state. The world must be
// quiescent (no Clock.Run in flight).
func (dc *Datacenter) Snapshot() *WorldState {
	s := &WorldState{
		clock:         dc.Clock.Snapshot(),
		rng:           dc.rng.Save(),
		nextCID:       dc.nextCID,
		billingNow:    dc.billing.now,
		billingMeters: make(map[string]meter, len(dc.billing.meters)),
	}
	for id, m := range dc.billing.meters {
		s.billingMeters[id] = *m
	}
	if dc.flash != nil {
		s.flash = &flashSnap{
			rng:        dc.flash.rng.Save(),
			flashUntil: dc.flash.flashUntil,
			boost:      dc.flash.boost,
		}
	}
	for _, rack := range dc.Racks {
		s.racks = append(s.racks, breakerSnap{
			accum:   rack.Breaker.accum,
			tripped: rack.Breaker.tripped,
		})
		for _, srv := range rack.Servers {
			snap := serverSnap{
				kernel:       srv.Kernel.Snapshot(),
				fs:           srv.FS.Snapshot(),
				runtime:      srv.Runtime.Snapshot(),
				benignRNG:    srv.Benign.rng.Save(),
				flashUntil:   srv.Benign.flashUntil,
				flashBoost:   srv.Benign.flashBoost,
				down:         srv.Down,
				reservations: make(map[string]float64, len(srv.reservations)),
			}
			for id, cores := range srv.reservations {
				snap.reservations[id] = cores
			}
			if srv.PowerNS != nil {
				snap.powerNS = srv.PowerNS.Snapshot()
			}
			// The chaos layer, when armed, owns three mutable islands:
			// the read-path injector, the counter-reset state stacked on
			// the RAPL provider, and the per-core DTS glitch state.
			if inj, ok := srv.FS.Injector().(*chaos.Injector); ok {
				snap.chaosInj = inj.Snapshot()
			}
			if e, ok := srv.FS.EnergyProvider().(*chaos.Energy); ok {
				snap.chaosCtr = e.Ctr().Snapshot()
			}
			if t, ok := srv.FS.ThermalProvider().(*chaos.Thermal); ok {
				snap.chaosDTS = t.Snapshot()
			}
			s.servers = append(s.servers, snap)
		}
	}
	return s
}

// Restore rewinds the datacenter to the captured state.
func (dc *Datacenter) Restore(s *WorldState) {
	dc.Clock.Restore(s.clock)
	dc.rng.Restore(s.rng)
	dc.nextCID = s.nextCID

	dc.billing.now = s.billingNow
	for id := range dc.billing.meters {
		if _, ok := s.billingMeters[id]; !ok {
			delete(dc.billing.meters, id)
		}
	}
	for id, saved := range s.billingMeters {
		m, ok := dc.billing.meters[id]
		if !ok {
			m = &meter{}
			dc.billing.meters[id] = m
		}
		*m = saved
	}

	if s.flash != nil {
		dc.flash.rng.Restore(s.flash.rng)
		dc.flash.flashUntil = s.flash.flashUntil
		dc.flash.boost = s.flash.boost
	}

	i := 0
	for r, rack := range dc.Racks {
		rack.Breaker.accum = s.racks[r].accum
		rack.Breaker.tripped = s.racks[r].tripped
		for _, srv := range rack.Servers {
			snap := &s.servers[i]
			i++
			// FS before kernel/runtime: it reinstates the captured
			// handler, provider, and injector pointers the chaos
			// restores below rewind the guts of.
			srv.FS.Restore(snap.fs)
			srv.Kernel.Restore(snap.kernel)
			srv.Runtime.Restore(snap.runtime)
			if snap.powerNS != nil {
				srv.PowerNS.Restore(snap.powerNS)
			}
			srv.Benign.rng.Restore(snap.benignRNG)
			srv.Benign.flashUntil = snap.flashUntil
			srv.Benign.flashBoost = snap.flashBoost
			srv.Down = snap.down
			for id := range srv.reservations {
				if _, ok := snap.reservations[id]; !ok {
					delete(srv.reservations, id)
				}
			}
			for id, cores := range snap.reservations {
				srv.reservations[id] = cores
			}
			if snap.chaosInj != nil {
				srv.FS.Injector().(*chaos.Injector).Restore(snap.chaosInj)
			}
			if snap.chaosCtr != nil {
				srv.FS.EnergyProvider().(*chaos.Energy).Ctr().Restore(snap.chaosCtr)
			}
			if snap.chaosDTS != nil {
				srv.FS.ThermalProvider().(*chaos.Thermal).Restore(snap.chaosDTS)
			}
		}
	}
}
