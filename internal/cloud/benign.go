package cloud

import (
	"math"

	"repro/internal/fastrand"
	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/workload"
)

// BenignConfig shapes the background tenant load on each server.
type BenignConfig struct {
	// BaseUtil and PeakUtil bound the diurnal utilization swing (fraction
	// of cores). Defaults reproduce the ~20–30% average utilization that
	// Barroso reports with peaks that drive Fig. 2's 35% power swing.
	BaseUtil float64
	PeakUtil float64
	// FlashCrowdPerDay is the expected number of short demand spikes per
	// day (news events, sales) superimposed on the diurnal curve;
	// FlashMinS/FlashMaxS bound each spike's duration.
	FlashCrowdPerDay float64
	FlashMinS        float64
	FlashMaxS        float64
	// SharedFlash makes flash crowds datacenter-wide events hitting every
	// server simultaneously (a popular service's surge), instead of
	// independent per-server bumps. Correlated crests are what give the
	// synergistic attack its clean trigger in Fig. 3.
	SharedFlash bool
	// PhaseJitterS de-synchronizes servers' diurnal peaks.
	PhaseJitterS float64
}

func (c *BenignConfig) fillDefaults() {
	if c.BaseUtil == 0 {
		c.BaseUtil = 0.18
	}
	if c.PeakUtil == 0 {
		c.PeakUtil = 0.75
	}
	if c.FlashCrowdPerDay == 0 {
		c.FlashCrowdPerDay = 6
	}
	if c.PhaseJitterS == 0 {
		c.PhaseJitterS = 3 * 3600
	}
	if c.FlashMinS == 0 {
		c.FlashMinS = 180
	}
	if c.FlashMaxS == 0 {
		c.FlashMaxS = 900
	}
}

// FlashDriver generates datacenter-wide flash-crowd events shared by all
// servers. Register it on the clock before any BenignLoad.
type FlashDriver struct {
	cfg        BenignConfig
	rng        *fastrand.Rand
	flashUntil float64
	boost      float64
}

// NewFlashDriver creates the shared event process.
func NewFlashDriver(cfg BenignConfig, seed int64) *FlashDriver {
	cfg.fillDefaults()
	return &FlashDriver{cfg: cfg, rng: fastrand.New(seed)}
}

// Tick implements simclock.Ticker.
func (f *FlashDriver) Tick(now, dt float64) {
	if now < f.flashUntil {
		return
	}
	f.boost = 0
	day := 24 * 3600.0
	p := f.cfg.FlashCrowdPerDay * dt / day
	if f.rng.Float64() < p {
		f.flashUntil = now + f.cfg.FlashMinS + f.rng.Float64()*(f.cfg.FlashMaxS-f.cfg.FlashMinS)
		f.boost = 0.15 + f.rng.Float64()*0.25
	}
}

// Boost returns the current shared flash-crowd utilization boost.
func (f *FlashDriver) Boost() float64 { return f.boost }

// BenignLoad drives one server's background tenants: a demand level that
// follows a diurnal sinusoid plus noise plus occasional flash crowds,
// executed as a mixed-profile task on the server's kernel. It implements
// simclock.Ticker and must be registered before the kernel so demand is in
// place when the kernel integrates the step.
type BenignLoad struct {
	cfg      BenignConfig
	rng      *fastrand.Rand
	srv      *Server
	task     *kernel.Task
	mixRates perfcount.Rates // per-core activity blend of the aggregate task
	phase    float64
	shared   *FlashDriver // non-nil when flashes are datacenter-wide

	flashUntil float64
	flashBoost float64
}

// SetSharedFlash switches the load to the shared event process.
func (b *BenignLoad) SetSharedFlash(f *FlashDriver) { b.shared = f }

// NewBenignLoad creates the generator for one server.
func NewBenignLoad(srv *Server, cfg BenignConfig, seed int64) *BenignLoad {
	cfg.fillDefaults()
	b := &BenignLoad{
		cfg: cfg,
		rng: fastrand.New(seed),
		srv: srv,
	}
	b.phase = (b.rng.Float64()*2 - 1) * cfg.PhaseJitterS
	// The benign tenants appear as one aggregate task in the root cgroup:
	// a blend of compute- and memory-bound work.
	mix := workload.Prime.Rates.Times(0.55).Plus(workload.Libquantum.Rates.Times(0.45))
	b.task = srv.Kernel.Spawn("benign-tenants", srv.Kernel.InitNS(), "/", 0,
		mix.Times(0))
	b.mixRates = mix
	return b
}

// Demand returns the current benign demand in cores.
func (b *BenignLoad) Demand() float64 { return b.task.DemandCores }

// Tick recomputes the benign demand for this step.
func (b *BenignLoad) Tick(now, dt float64) {
	cores := float64(b.srv.Kernel.Options().Cores)
	day := 24 * 3600.0

	// Diurnal curve: trough at ~04:00, crest at ~20:00 local time.
	pos := math.Sin(2 * math.Pi * (now + b.phase - 0.3*day) / day)
	util := b.cfg.BaseUtil + (b.cfg.PeakUtil-b.cfg.BaseUtil)*(0.5+0.5*pos)

	// Weekly modulation: weekends (days 6,7) run ~20% lighter.
	dayIdx := int(now/day) % 7
	if dayIdx >= 5 {
		util *= 0.8
	}

	// Flash crowds: either the shared datacenter-wide process or an
	// independent per-server Poisson process.
	if b.shared != nil {
		util += b.shared.Boost()
	} else {
		if now >= b.flashUntil {
			b.flashBoost = 0
			p := b.cfg.FlashCrowdPerDay * dt / day
			if b.rng.Float64() < p {
				b.flashUntil = now + b.cfg.FlashMinS + b.rng.Float64()*(b.cfg.FlashMaxS-b.cfg.FlashMinS)
				b.flashBoost = 0.15 + b.rng.Float64()*0.25
			}
		}
		util += b.flashBoost
	}

	// Noise.
	util *= 1 + (b.rng.Float64()*2-1)*0.06
	if util < 0.02 {
		util = 0.02
	}
	if util > 0.95 {
		util = 0.95
	}

	demand := util * cores
	b.task.DemandCores = demand
	b.task.Rates = b.mixRates.Times(demand)
}
