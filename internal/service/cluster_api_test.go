package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// newClusterAPI builds an httptest server whose handler carries the given
// cluster node (nil = standalone, the production default).
func newClusterAPI(t *testing.T, node *cluster.Node) *httptest.Server {
	t.Helper()
	s := New(Config{}, nil)
	s.SetRunner(fakeInspectRunner)
	s.Start()
	srv := httptest.NewServer(NewHandler(APIConfig{
		Scheduler: s,
		Version:   "leaksd test (rev deadbeef)",
		Cluster:   node,
	}))
	t.Cleanup(func() {
		_ = s.Shutdown(t.Context())
		srv.Close()
	})
	return srv
}

// post mirrors the get helper for JSON POST bodies.
func post(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestClusterStatusStandalone: a daemon with no cluster config (nil node)
// still answers GET /v1/cluster — as a standalone.
func TestClusterStatusStandalone(t *testing.T) {
	srv := newClusterAPI(t, nil)
	resp, body := get(t, srv, "/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200 (%s)", resp.StatusCode, body)
	}
	var st cluster.NodeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if st.Role != cluster.RoleStandalone || st.Worker != nil || st.Cluster != nil {
		t.Fatalf("standalone status = %+v", st)
	}
}

// TestClusterRoleGating: each cluster endpoint 409s with wrong_role when
// the node cannot serve it.
func TestClusterRoleGating(t *testing.T) {
	worker := cluster.NewWorkerNode(cluster.NewWorker("w1", cluster.NewLocalWorlds(1)))
	standalone := cluster.NewStandaloneNode()

	cases := []struct {
		name   string
		node   *cluster.Node
		method string
		path   string
	}{
		{"scan on worker", worker, http.MethodPost, "/v1/cluster/scans"},
		{"scan on standalone", standalone, http.MethodPost, "/v1/cluster/scans"},
		{"shard on standalone", standalone, http.MethodPost, "/v1/cluster/shards"},
		{"ping on standalone", standalone, http.MethodGet, "/v1/cluster/ping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := newClusterAPI(t, tc.node)
			var resp *http.Response
			var body []byte
			if tc.method == http.MethodGet {
				resp, body = get(t, srv, tc.path)
			} else {
				resp, body = post(t, srv, tc.path, `{"spec":{"containers":2}}`)
			}
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("status = %d; want 409 (%s)", resp.StatusCode, body)
			}
			envelope(t, body, "wrong_role")
		})
	}
}

// TestClusterWorkerShardRoundTrip drives a worker node's HTTP surface the
// way a coordinator's HTTPTransport does: ping, then a shard execution.
func TestClusterWorkerShardRoundTrip(t *testing.T) {
	node := cluster.NewWorkerNode(cluster.NewWorker("w1", cluster.NewLocalWorlds(1)))
	srv := newClusterAPI(t, node)

	resp, body := get(t, srv, "/v1/cluster/ping")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping status = %d (%s)", resp.StatusCode, body)
	}
	var hb cluster.Heartbeat
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatalf("decode heartbeat: %v", err)
	}
	if hb.WorkerID != "w1" || hb.Shards != 0 {
		t.Fatalf("fresh heartbeat = %+v", hb)
	}

	resp, body = post(t, srv, "/v1/cluster/shards",
		`{"scan_id":"s1","shard":0,"spec":{"provider":"local","containers":3},"containers":[0,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard status = %d (%s)", resp.StatusCode, body)
	}
	var res cluster.ShardResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode shard result: %v", err)
	}
	if res.WorkerID != "w1" || res.Generation == 0 || len(res.Findings) != 2 {
		t.Fatalf("shard result = worker %q gen %d findings %d; want w1, >0, 2",
			res.WorkerID, res.Generation, len(res.Findings))
	}
	for i, fs := range res.Findings {
		if len(fs) == 0 {
			t.Fatalf("container slot %d has no findings", i)
		}
	}

	// The heartbeat now accounts for the executed shard and cached world.
	_, body = get(t, srv, "/v1/cluster/ping")
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatalf("decode heartbeat: %v", err)
	}
	if hb.Shards != 1 || hb.Worlds != 1 {
		t.Fatalf("post-shard heartbeat = %+v; want 1 shard, 1 world", hb)
	}

	// Malformed and invalid bodies are client errors, not 500s.
	resp, body = post(t, srv, "/v1/cluster/shards", `{"spec":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON status = %d (%s)", resp.StatusCode, body)
	}
	envelope(t, body, "bad_request")
	resp, body = post(t, srv, "/v1/cluster/shards", `{"spec":{"provider":"nope","containers":1}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad provider status = %d (%s)", resp.StatusCode, body)
	}
	envelope(t, body, "bad_request")
}

// TestClusterCoordinatorScanViaAPI runs a partitioned scan through
// POST /v1/cluster/scans against an in-process worker pair and checks the
// summary envelope.
func TestClusterCoordinatorScanViaAPI(t *testing.T) {
	w1 := cluster.NewWorker("w1", cluster.NewLocalWorlds(1))
	w2 := cluster.NewWorker("w2", cluster.NewLocalWorlds(1))
	tr := cluster.NewInProc(w1, w2)
	coord := cluster.NewCoordinator(cluster.Config{ShardSize: 2}, tr,
		[]string{"w1", "w2"}, cluster.NewMetrics(nil))
	srv := newClusterAPI(t, cluster.NewCoordinatorNode(coord))

	resp, body := post(t, srv, "/v1/cluster/scans", `{"provider":"local","containers":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d (%s)", resp.StatusCode, body)
	}
	var scan struct {
		Spec       cluster.Spec          `json:"spec"`
		Generation uint64                `json:"generation"`
		Partial    bool                  `json:"partial"`
		Duration   float64               `json:"duration_seconds"`
		Leaking    []int                 `json:"leaking"`
		Shards     []cluster.ShardStatus `json:"shards"`
	}
	if err := json.Unmarshal(body, &scan); err != nil {
		t.Fatalf("decode scan: %v (%s)", err, body)
	}
	if scan.Partial || scan.Generation == 0 || len(scan.Leaking) != 5 || len(scan.Shards) == 0 {
		t.Fatalf("scan = %+v; want complete 5-container result", scan)
	}
	for i, n := range scan.Leaking {
		if n < 0 {
			t.Fatalf("container %d degraded in a healthy scan", i)
		}
	}
	for _, sh := range scan.Shards {
		if sh.Status != cluster.ShardDone {
			t.Fatalf("shard %d = %s; want done", sh.Shard, sh.Status)
		}
	}

	// Spec validation failures surface as 400s before any dispatch.
	resp, body = post(t, srv, "/v1/cluster/scans", `{"containers":0}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty fleet status = %d (%s)", resp.StatusCode, body)
	}
	envelope(t, body, "bad_request")

	// Coordinator status reflects the finished scan.
	resp, body = get(t, srv, "/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var st cluster.NodeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Role != cluster.RoleCoordinator || st.Cluster == nil || st.Cluster.Scans != 1 {
		t.Fatalf("coordinator status = %+v; want 1 scan recorded", st)
	}
}
