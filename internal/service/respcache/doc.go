// Package respcache is the pre-rendered response cache behind leaksd's
// /v1 read path. The incremental engine's epoch machinery (internal/kernel,
// internal/engine) proves that a response body is immutable until some
// tracked state mutates; this package turns that invariant into HTTP
// serving machinery:
//
//   - Query is the canonical filter+pagination parameter set. ParseQuery
//     canonicalizes a raw query string without allocating on well-formed
//     input (reordered parameters, absent-vs-default spellings, and unknown
//     parameters all collapse to one canonical Query), so equivalent
//     request spellings share one cache entry. The same canonicalizer
//     backs ScanRequest.Key in internal/service — the scan dedup key and
//     the response cache key cannot drift apart.
//   - Cache maps (Query, epoch) to a prebuilt Entry and holds entries for
//     exactly one epoch: storing under a newer epoch drops every older
//     entry, which is the whole invalidation story — nothing expires,
//     nothing is patched, an epoch bump simply makes the old world
//     unreachable.
//   - Entry is a fully rendered response: status, body bytes, and
//     pre-allocated header value slices (ETag, X-Total-Count,
//     Content-Type), so serving a hit is two map assignments, a
//     WriteHeader, and one Write — zero heap allocations. The ETag is
//     derived from the epoch snapshot, so If-None-Match revalidation
//     answers 304 without touching the body at all.
//
// The cache deliberately has no TTL and no per-entry eviction: epoch bumps
// are the only invalidation, exactly mirroring the engine's "responses are
// immutable until an epoch bumps" contract. A small capacity bound guards
// against adversarial pagination spam (distinct limit/offset pairs);
// beyond it, responses are still served, just not retained.
package respcache
