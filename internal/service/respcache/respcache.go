package respcache

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// NoLimit is Query.Limit's "parameter absent" sentinel: the whole
// collection is returned. Limit 0 is distinct — a valid count-only probe.
const NoLimit = -1

// Query is the canonical filter+pagination parameter set of the /v1 read
// endpoints. Two raw query strings that ask the same question parse to the
// same Query value (reordered parameters, absent-vs-default spellings,
// unknown parameters, duplicate keys), which is what makes it usable as a
// cache key: the struct is comparable, so a map lookup on it allocates
// nothing.
type Query struct {
	// Provider restricts to one provider ("" = no filter). Whether the
	// name is a known profile is the caller's business, not the parser's.
	Provider string
	// Runtime restricts to one container-runtime target ("" = no filter) —
	// the matrix column family added alongside the providers. Like
	// Provider, name validation is the caller's business.
	Runtime string
	// Verdict is the canonical availability glyph ("" = no filter);
	// ParseQuery folds the ASCII aliases onto the glyphs.
	Verdict string
	// Limit is the window size (NoLimit = absent, 0 = count-only probe).
	Limit int
	// Offset is the window start (0 = absent — the two spellings are one
	// question, so they canonicalize to one key).
	Offset int
}

// ParamError reports a malformed limit/offset value; the API layer renders
// it as a 400 with the parameter name and raw value.
type ParamError struct {
	Param string // "limit" or "offset"
	Value string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("invalid %s %q: non-negative integer required", e.Param, e.Value)
}

// VerdictError reports an unrecognized verdict filter value.
type VerdictError struct {
	Value string
}

func (e *VerdictError) Error() string {
	return fmt.Sprintf("invalid verdict %q (one of available, partial, unavailable)", e.Value)
}

// CanonicalVerdict folds a verdict spelling onto its canonical availability
// glyph: the glyphs themselves or their ASCII names. Empty means "no
// filter"; unknown spellings report ok == false.
func CanonicalVerdict(s string) (string, bool) {
	switch s {
	case "":
		return "", true
	case "available", core.Available.String():
		return core.Available.String(), true
	case "partial", core.PartiallyAvailable.String():
		return core.PartiallyAvailable.String(), true
	case "unavailable", core.Unavailable.String():
		return core.Unavailable.String(), true
	}
	return "", false
}

// ParseQuery canonicalizes a raw URL query into a Query. On well-formed
// input (no percent-escapes, no '+') it allocates nothing: parameter names
// and values are substrings of raw, numbers parse in place, and the first
// occurrence of a duplicated key wins — the same answer url.Values.Get
// would give. Escaped input takes a url.ParseQuery fallback that matches
// the pre-cache handlers' r.URL.Query() behaviour bit for bit (parse
// errors are ignored, surviving pairs are used).
func ParseQuery(raw string) (Query, error) {
	q := Query{Limit: NoLimit}
	if strings.IndexByte(raw, '%') >= 0 || strings.IndexByte(raw, '+') >= 0 {
		return parseEscaped(raw)
	}
	var seenProv, seenRun, seenVerd, seenLimit, seenOffset bool
	for len(raw) > 0 {
		seg := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		key, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, val = seg[:i], seg[i+1:]
		}
		if val == "" {
			continue // absent and empty spell the same default
		}
		switch key {
		case "provider":
			if !seenProv {
				q.Provider, seenProv = val, true
			}
		case "runtime":
			if !seenRun {
				q.Runtime, seenRun = val, true
			}
		case "verdict":
			if !seenVerd {
				v, ok := CanonicalVerdict(val)
				if !ok {
					return q, &VerdictError{Value: val}
				}
				q.Verdict, seenVerd = v, true
			}
		case "limit":
			if !seenLimit {
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return q, &ParamError{Param: "limit", Value: val}
				}
				q.Limit, seenLimit = n, true
			}
		case "offset":
			if !seenOffset {
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return q, &ParamError{Param: "offset", Value: val}
				}
				q.Offset, seenOffset = n, true
			}
		}
	}
	return q, nil
}

// parseEscaped is the allocating fallback for percent-escaped queries.
func parseEscaped(raw string) (Query, error) {
	q := Query{Limit: NoLimit}
	vals, _ := url.ParseQuery(raw) // errors ignored, like r.URL.Query()
	q.Provider = vals.Get("provider")
	q.Runtime = vals.Get("runtime")
	if s := vals.Get("verdict"); s != "" {
		v, ok := CanonicalVerdict(s)
		if !ok {
			return q, &VerdictError{Value: s}
		}
		q.Verdict = v
	}
	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, &ParamError{Param: "limit", Value: s}
		}
		q.Limit = n
	}
	if s := vals.Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, &ParamError{Param: "offset", Value: s}
		}
		q.Offset = n
	}
	return q, nil
}

// Window maps the pagination pair onto a slice of length n, returning the
// half-open [lo, hi) index range. Offsets past the end yield an empty
// window rather than an error — a stable contract for pollers walking a
// list that can shrink between requests.
func (q Query) Window(n int) (lo, hi int) {
	if q.Offset >= n {
		return n, n
	}
	lo = q.Offset
	hi = n
	if q.Limit >= 0 && lo+q.Limit < n {
		hi = lo + q.Limit
	}
	return lo, hi
}

// Canonical renders the canonical string form — defaults omitted, fields in
// fixed order — used wherever a query's identity feeds a hash (the scan
// dedup key in internal/service shares this spelling). Allocates; cache
// lookups use the Query value itself instead.
func (q Query) Canonical() string {
	var b strings.Builder
	sep := func() {
		if b.Len() > 0 {
			b.WriteByte('&')
		}
	}
	if q.Provider != "" {
		sep()
		b.WriteString("provider=")
		b.WriteString(q.Provider)
	}
	if q.Runtime != "" {
		sep()
		b.WriteString("runtime=")
		b.WriteString(q.Runtime)
	}
	if q.Verdict != "" {
		sep()
		b.WriteString("verdict=")
		b.WriteString(q.Verdict)
	}
	if q.Limit != NoLimit {
		sep()
		b.WriteString("limit=")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	if q.Offset != 0 {
		sep()
		b.WriteString("offset=")
		b.WriteString(strconv.Itoa(q.Offset))
	}
	return b.String()
}

// clone deep-copies the string fields so a stored key never pins a request
// URL's backing array.
func (q Query) clone() Query {
	q.Provider = strings.Clone(q.Provider)
	q.Runtime = strings.Clone(q.Runtime)
	q.Verdict = strings.Clone(q.Verdict)
	return q
}

// ETagFor derives the strong entity tag for an endpoint at an epoch. The
// epoch snapshot is the whole identity: the body cannot change without the
// epoch bumping (the engine invariant), so no content hash is needed and
// revalidation costs nothing.
func ETagFor(endpoint string, epoch uint64) string {
	return `"` + endpoint + "-e" + strconv.FormatUint(epoch, 10) + `"`
}

// Pre-canonicalized header keys (textproto canonical form), assigned
// directly into the response header map so a cache hit never allocates.
const (
	headerETag       = "Etag"
	headerTotalCount = "X-Total-Count"
	headerCT         = "Content-Type"
)

var jsonCT = []string{"application/json"}

// Entry is one fully rendered response. Everything a hit needs — body
// bytes, ETag, header value slices — is built once at render time.
type Entry struct {
	Status int
	Body   []byte
	ETag   string

	etagVal  []string
	totalVal []string // nil = endpoint has no X-Total-Count
}

// NewEntry builds a prebuilt response. total < 0 omits X-Total-Count.
func NewEntry(status int, body []byte, etag string, total int) *Entry {
	e := &Entry{Status: status, Body: body, ETag: etag, etagVal: []string{etag}}
	if total >= 0 {
		e.totalVal = []string{strconv.Itoa(total)}
	}
	return e
}

// Serve writes the entry: a 304 with the ETag when ifNoneMatch revalidates
// (exact strong match or "*"), the prebuilt body otherwise. Returns the
// status written. Zero allocations either way.
func (e *Entry) Serve(w http.ResponseWriter, ifNoneMatch string) int {
	h := w.Header()
	h[headerETag] = e.etagVal
	if e.totalVal != nil {
		h[headerTotalCount] = e.totalVal
	}
	if ifNoneMatch != "" && (ifNoneMatch == e.ETag || ifNoneMatch == "*") {
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified
	}
	h[headerCT] = jsonCT
	w.WriteHeader(e.Status)
	_, _ = w.Write(e.Body)
	return e.Status
}

// DefaultCap bounds a cache's entry count. The canonical query space an
// honest client population produces is tiny (providers × verdicts × a few
// windows); the bound exists so adversarial limit/offset spam cannot grow
// the map without end. Beyond it, responses are rendered and served but
// not retained.
const DefaultCap = 512

// Cache holds the prebuilt entries of one endpoint for exactly one epoch.
// Storing under a newer epoch drops every older entry — epoch bumps are
// the only invalidation, mirroring the engine's immutability contract.
type Cache struct {
	cap int

	mu      sync.RWMutex
	epoch   uint64
	entries map[Query]*Entry
}

// NewCache builds a cache bounded at cap entries (DefaultCap if <= 0).
func NewCache(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Cache{cap: cap, entries: make(map[Query]*Entry)}
}

// Get returns the entry for q rendered at epoch. A cache whose entries
// belong to a different epoch misses — the caller re-renders and Put
// starts the new epoch's population. Allocation-free.
func (c *Cache) Get(epoch uint64, q Query) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.epoch != epoch {
		return nil, false
	}
	e, ok := c.entries[q]
	return e, ok
}

// Put stores an entry rendered at epoch. An epoch newer than the cache's
// resets it (the old world just became unreachable); an epoch older than
// the cache's is dropped — a render that raced a bump must not resurrect
// stale bytes. The key's strings are cloned so stored keys never pin
// request buffers.
func (c *Cache) Put(epoch uint64, q Query, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case epoch < c.epoch:
		return
	case epoch > c.epoch:
		c.epoch = epoch
		clear(c.entries)
	}
	if len(c.entries) >= c.cap {
		return
	}
	c.entries[q.clone()] = e
}

// Len reports the live entry count (tests and metrics).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Epoch reports the epoch the cache currently holds entries for.
func (c *Cache) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}
