package respcache

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestParseQueryCanonicalization: equivalent raw spellings parse to one
// Query value — the property that makes Query usable as a cache key.
func TestParseQueryCanonicalization(t *testing.T) {
	groups := [][]string{
		// Absent, empty, and unknown-only spellings of "no parameters".
		{"", "limit=", "offset=", "provider=", "verdict=", "foo=bar", "offset=0", "limit=&offset=0"},
		// Reordered and duplicated parameters; first duplicate wins.
		{"provider=cc1&limit=50", "limit=50&provider=cc1", "limit=50&provider=cc1&limit=7", "limit=50&provider=cc1&foo=1"},
		// ASCII verdict aliases fold onto the glyphs, escaped or not.
		{"verdict=available", "verdict=%E2%97%8F", "verdict=" + "●"},
		{"verdict=partial", "verdict=" + "◐"},
		{"verdict=unavailable", "verdict=" + "○"},
		// offset=0 is the default spelled out.
		{"limit=2&offset=0", "offset=0&limit=2", "limit=2"},
	}
	for _, g := range groups {
		want, err := ParseQuery(g[0])
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", g[0], err)
		}
		for _, raw := range g[1:] {
			got, err := ParseQuery(raw)
			if err != nil {
				t.Fatalf("ParseQuery(%q): %v", raw, err)
			}
			if got != want {
				t.Errorf("ParseQuery(%q) = %+v, want %+v (canonical with %q)", raw, got, want, g[0])
			}
		}
	}

	// Distinct questions must stay distinct.
	distinct := []string{"", "limit=0", "limit=1", "offset=1", "provider=cc1", "verdict=available", "provider=cc1&verdict=available"}
	seen := map[Query]string{}
	for _, raw := range distinct {
		q, err := ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		if prev, dup := seen[q]; dup {
			t.Errorf("ParseQuery(%q) collides with ParseQuery(%q): %+v", raw, prev, q)
		}
		seen[q] = raw
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, raw := range []string{"limit=-1", "limit=x", "limit=1.5", "offset=-2", "offset=x"} {
		_, err := ParseQuery(raw)
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("ParseQuery(%q) err = %v, want ParamError", raw, err)
		}
	}
	_, err := ParseQuery("verdict=sideways")
	var ve *VerdictError
	if !errors.As(err, &ve) {
		t.Errorf("ParseQuery(verdict=sideways) err = %v, want VerdictError", err)
	}
	// The escaped fallback reports the same errors.
	if _, err := ParseQuery("limit=%2D1"); err == nil {
		t.Error("escaped negative limit accepted")
	}
}

// TestParseQueryZeroAlloc: the fast path — what every steady-state /v1 hit
// takes — must not allocate.
func TestParseQueryZeroAlloc(t *testing.T) {
	raws := []string{"", "provider=cc1&verdict=available&limit=50&offset=3", "limit=2&offset=0&unknown=x"}
	for _, raw := range raws {
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := ParseQuery(raw); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("ParseQuery(%q): %.1f allocs/op, want 0", raw, allocs)
		}
	}
}

func TestQueryWindow(t *testing.T) {
	cases := []struct {
		q         Query
		n, lo, hi int
	}{
		{Query{Limit: NoLimit}, 5, 0, 5},
		{Query{Limit: 2}, 5, 0, 2},
		{Query{Limit: 2, Offset: 4}, 5, 4, 5},
		{Query{Limit: 0}, 5, 0, 0},
		{Query{Limit: NoLimit, Offset: 5}, 5, 5, 5},
		{Query{Limit: NoLimit, Offset: 99}, 5, 5, 5},
	}
	for _, tc := range cases {
		lo, hi := tc.q.Window(tc.n)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%+v.Window(%d) = [%d,%d), want [%d,%d)", tc.q, tc.n, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestCanonicalString(t *testing.T) {
	q, err := ParseQuery("offset=3&verdict=available&provider=cc1&limit=50")
	if err != nil {
		t.Fatal(err)
	}
	want := "provider=cc1&verdict=●&limit=50&offset=3"
	if got := q.Canonical(); got != want {
		t.Errorf("Canonical() = %q, want %q", got, want)
	}
	if got := (Query{Limit: NoLimit}).Canonical(); got != "" {
		t.Errorf("zero query Canonical() = %q, want empty", got)
	}
}

// TestRuntimeParameter: the runtime= filter (the matrix column family
// added alongside the providers) canonicalizes like provider= — absent and
// empty spellings collapse to the zero query, the canonical string keeps
// historical byte-identity when runtime is unset, and the fast path stays
// allocation-free.
func TestRuntimeParameter(t *testing.T) {
	for _, raw := range []string{"runtime=", "runtime=&foo=1", ""} {
		q, err := ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		if q != (Query{Limit: NoLimit}) {
			t.Errorf("ParseQuery(%q) = %+v, want the zero query", raw, q)
		}
	}
	fast, err := ParseQuery("runtime=gvisor&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	escaped, err := ParseQuery("runtime=%67visor&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	if fast != escaped || fast.Runtime != "gvisor" {
		t.Fatalf("fast %+v vs escaped %+v", fast, escaped)
	}
	// runtime and provider are distinct dimensions.
	p, _ := ParseQuery("provider=gvisor")
	r, _ := ParseQuery("runtime=gvisor")
	if p == r {
		t.Fatal("provider= and runtime= must not collide as cache keys")
	}
	// Canonical emits runtime between provider and verdict; an unset
	// runtime leaves historical canonical strings byte-identical.
	q, err := ParseQuery("offset=3&verdict=available&runtime=kata&provider=cc1&limit=50")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Canonical(), "provider=cc1&runtime=kata&verdict=●&limit=50&offset=3"; got != want {
		t.Errorf("Canonical() = %q, want %q", got, want)
	}
	old, _ := ParseQuery("provider=cc1&limit=50")
	if got, want := old.Canonical(), "provider=cc1&limit=50"; got != want {
		t.Errorf("historical Canonical() = %q, want %q", got, want)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseQuery("runtime=kata&verdict=available&limit=50"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("runtime fast path: %.1f allocs/op, want 0", allocs)
	}
}

// TestCacheEpochInvalidation: entries live for exactly one epoch; a bump
// makes the old world unreachable and a raced old-epoch Put is dropped.
func TestCacheEpochInvalidation(t *testing.T) {
	c := NewCache(8)
	q := Query{Limit: NoLimit}
	e1 := NewEntry(200, []byte("epoch-1"), ETagFor("results", 1), 3)
	c.Put(1, q, e1)
	if got, ok := c.Get(1, q); !ok || string(got.Body) != "epoch-1" {
		t.Fatalf("Get(1) = %v, %v", got, ok)
	}
	if _, ok := c.Get(2, q); ok {
		t.Fatal("Get at a newer epoch served an old entry")
	}
	e2 := NewEntry(200, []byte("epoch-2"), ETagFor("results", 2), 3)
	c.Put(2, q, e2)
	if _, ok := c.Get(1, q); ok {
		t.Fatal("old epoch still served after bump")
	}
	if got, ok := c.Get(2, q); !ok || string(got.Body) != "epoch-2" {
		t.Fatalf("Get(2) = %v, %v", got, ok)
	}
	// A render that raced the bump must not resurrect stale bytes.
	c.Put(1, q, e1)
	if got, _ := c.Get(2, q); string(got.Body) != "epoch-2" {
		t.Fatal("stale-epoch Put overwrote the live entry")
	}
	if c.Epoch() != 2 || c.Len() != 1 {
		t.Fatalf("epoch %d len %d, want 2 / 1", c.Epoch(), c.Len())
	}
}

func TestCacheCapBound(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 10; i++ {
		c.Put(1, Query{Limit: i}, NewEntry(200, nil, "", -1))
	}
	if c.Len() != 2 {
		t.Fatalf("cache grew to %d entries past its cap of 2", c.Len())
	}
}

func TestEntryServe(t *testing.T) {
	e := NewEntry(200, []byte(`{"ok":true}`), ETagFor("results", 7), 3)

	rec := httptest.NewRecorder()
	if code := e.Serve(rec, ""); code != 200 {
		t.Fatalf("Serve = %d, want 200", code)
	}
	if rec.Body.String() != `{"ok":true}` {
		t.Errorf("body %q", rec.Body.String())
	}
	if got := rec.Header().Get("ETag"); got != `"results-e7"` {
		t.Errorf("ETag %q", got)
	}
	if got := rec.Header().Get("X-Total-Count"); got != "3" {
		t.Errorf("X-Total-Count %q", got)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type %q", got)
	}

	// Revalidation: matching If-None-Match answers 304 with no body.
	rec = httptest.NewRecorder()
	if code := e.Serve(rec, `"results-e7"`); code != http.StatusNotModified {
		t.Fatalf("revalidated Serve = %d, want 304", code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rec.Body.String())
	}
	if got := rec.Header().Get("ETag"); got != `"results-e7"` {
		t.Errorf("304 ETag %q", got)
	}
	rec = httptest.NewRecorder()
	if code := e.Serve(rec, "*"); code != http.StatusNotModified {
		t.Fatalf(`Serve with If-None-Match "*" = %d, want 304`, code)
	}
	// A stale tag gets the full body.
	rec = httptest.NewRecorder()
	if code := e.Serve(rec, `"results-e6"`); code != 200 {
		t.Fatalf("stale-tag Serve = %d, want 200", code)
	}

	// Entries without a total omit the header.
	rec = httptest.NewRecorder()
	NewEntry(200, []byte("{}"), `"engine-e1"`, -1).Serve(rec, "")
	if _, ok := rec.Header()["X-Total-Count"]; ok {
		t.Error("total-less entry set X-Total-Count")
	}
}

// TestServeZeroAlloc: a cache hit — Get plus Serve against a warm header
// map — is allocation-free.
func TestServeZeroAlloc(t *testing.T) {
	c := NewCache(0)
	q, _ := ParseQuery("provider=cc1&limit=50")
	c.Put(3, q, NewEntry(200, []byte(`{"results":[]}`), ETagFor("results", 3), 0))
	w := &nopWriter{h: make(http.Header)}
	serve := func(inm string) {
		e, ok := c.Get(3, q)
		if !ok {
			t.Fatal("miss")
		}
		e.Serve(w, inm)
	}
	serve("") // warm the header map
	if allocs := testing.AllocsPerRun(200, func() { serve("") }); allocs != 0 {
		t.Errorf("hit path: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { serve(`"results-e3"`) }); allocs != 0 {
		t.Errorf("304 path: %.1f allocs/op, want 0", allocs)
	}
}

// nopWriter is a reusable ResponseWriter: header map persists across
// requests the way a benchmark's would.
type nopWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *nopWriter) Header() http.Header  { return w.h }
func (w *nopWriter) WriteHeader(code int) { w.code = code }
func (w *nopWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
