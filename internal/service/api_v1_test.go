package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeInspectRunner returns a canned per-provider result without touching
// the experiment layer — API tests need jobs and verdicts, not physics.
func fakeInspectRunner(ctx context.Context, req ScanRequest) (*ScanResult, error) {
	avail := "●"
	if req.Provider == "cc2" {
		avail = "○"
	}
	return &ScanResult{
		Request:  req,
		Rendered: "FAKE " + string(req.Kind) + " " + req.Provider,
		Verdicts: []Verdict{
			{Provider: req.Provider, Channel: "/proc/meminfo", Availability: avail},
			{Provider: req.Provider, Channel: "/proc/uptime", Availability: "◐"},
		},
	}, nil
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// envelope decodes and asserts the /v1 structured error shape.
func envelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the /v1 envelope: %v (%s)", err, body)
	}
	if env.Error.Code != wantCode {
		t.Errorf("error code = %q, want %q (%s)", env.Error.Code, wantCode, body)
	}
	if env.Error.Message == "" {
		t.Errorf("error envelope has empty message: %s", body)
	}
}

// submitAndWait submits a scan through the given route and polls until the
// job is terminal.
func submitAndWait(t *testing.T, s *Scheduler, srv *httptest.Server, route, body string) Job {
	t.Helper()
	resp, err := http.Post(srv.URL+route, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", route, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", route, resp.StatusCode, raw)
	}
	var job Job
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatalf("decode job: %v (%s)", err, raw)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := s.JobByID(job.ID)
		if !ok {
			t.Fatalf("job %s vanished", job.ID)
		}
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after 10s (status %s)", job.ID, j.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestV1LegacyCompat: the /v1 read endpoints serve byte-identical bodies
// to their legacy aliases when no /v1-only parameter is used, and the
// legacy routes carry Deprecation + successor-version headers while /v1
// routes do not.
func TestV1LegacyCompat(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeInspectRunner)
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"inspect","provider":"cc1"}`)

	routes := []struct{ legacy, v1 string }{
		{"/scans", "/v1/scans"},
		{"/results", "/v1/results"},
		{"/channels", "/v1/channels"},
		{"/providers", "/v1/providers"},
		{"/version", "/v1/version"},
	}
	for _, r := range routes {
		respL, bodyL := get(t, srv, r.legacy)
		respV, bodyV := get(t, srv, r.v1)
		if respL.StatusCode != http.StatusOK || respV.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s: status %d/%d", r.legacy, r.v1, respL.StatusCode, respV.StatusCode)
		}
		if string(bodyL) != string(bodyV) {
			t.Errorf("%s body differs from %s:\nlegacy: %s\nv1:     %s", r.legacy, r.v1, bodyL, bodyV)
		}
		if respL.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", r.legacy)
		}
		if link := respL.Header.Get("Link"); !strings.Contains(link, r.v1) || !strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header %q does not point at %s", r.legacy, link, r.v1)
		}
		if respV.Header.Get("Deprecation") != "" {
			t.Errorf("%s: /v1 route unexpectedly marked deprecated", r.v1)
		}
	}

	// Legacy error shape stays flat; /v1 carries the envelope.
	respL, bodyL := get(t, srv, "/scans/nope")
	respV, bodyV := get(t, srv, "/v1/scans/nope")
	if respL.StatusCode != http.StatusNotFound || respV.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-scan status %d/%d, want 404/404", respL.StatusCode, respV.StatusCode)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(bodyL, &flat); err != nil || flat.Error == "" {
		t.Errorf("legacy error shape changed: %s", bodyL)
	}
	envelope(t, bodyV, codeNotFound)
}

// TestV1ErrorEnvelopes drives every /v1 failure path and asserts the
// structured envelope with the right code.
func TestV1ErrorEnvelopes(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeInspectRunner)

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/scans", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/scans: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	if resp, body := post(`{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid JSON: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeBadRequest)
	}
	if resp, body := post(`{"kind":"bogus"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeBadRequest)
	}
	if resp, body := post(`{"kind":"inspect","provider":"atlantis"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown provider: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeBadRequest)
	}

	if resp, body := get(t, srv, "/v1/scans/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing scan: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeNotFound)
	}
	if resp, body := get(t, srv, "/v1/results?provider=atlantis"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown results provider: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeNotFound)
	}
	if resp, body := get(t, srv, "/v1/scans?provider=atlantis"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scans provider: status %d", resp.StatusCode)
	} else {
		envelope(t, body, codeNotFound)
	}
	for _, q := range []string{"limit=-1", "limit=x", "offset=-2", "offset=x", "verdict=sideways"} {
		resp, body := get(t, srv, "/v1/scans?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
			continue
		}
		envelope(t, body, codeBadRequest)
	}

	// Draining: submissions refused with the draining code.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	if resp, body := post(`{"kind":"inspect","provider":"cc1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining: status %d, want 503", resp.StatusCode)
	} else {
		envelope(t, body, codeDraining)
	}
}

func TestV1ScansPaginationAndFiltering(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeInspectRunner)
	for _, p := range []string{"cc1", "cc2", "cc3"} {
		submitAndWait(t, s, srv, "/v1/scans", fmt.Sprintf(`{"kind":"inspect","provider":%q}`, p))
	}

	type scansBody struct {
		Scans []Job `json:"scans"`
	}
	decode := func(body []byte) scansBody {
		t.Helper()
		var sb scansBody
		if err := json.Unmarshal(body, &sb); err != nil {
			t.Fatalf("decode scans: %v (%s)", err, body)
		}
		return sb
	}

	cases := []struct {
		query     string
		wantLen   int
		wantTotal string
	}{
		{"", 3, "3"},
		{"?limit=2", 2, "3"},
		{"?limit=2&offset=2", 1, "3"},
		{"?limit=0", 0, "3"},      // count-only probe
		{"?offset=3", 0, "3"},     // offset exactly past end
		{"?offset=999", 0, "3"},   // offset far past end
		{"?provider=cc2", 1, "1"}, // filter before pagination
		{"?provider=cc2&limit=0", 0, "1"},
		{"?verdict=available", 2, "2"},   // cc1, cc3 carry ●
		{"?verdict=unavailable", 1, "1"}, // cc2 carries ○
		{"?verdict=partial", 3, "3"},     // all carry ◐
		{"?verdict=available&provider=cc2", 0, "0"},
	}
	for _, tc := range cases {
		resp, body := get(t, srv, "/v1/scans"+tc.query)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /v1/scans%s: status %d: %s", tc.query, resp.StatusCode, body)
			continue
		}
		sb := decode(body)
		if len(sb.Scans) != tc.wantLen {
			t.Errorf("GET /v1/scans%s: %d scans, want %d", tc.query, len(sb.Scans), tc.wantLen)
		}
		if got := resp.Header.Get("X-Total-Count"); got != tc.wantTotal {
			t.Errorf("GET /v1/scans%s: X-Total-Count %q, want %q", tc.query, got, tc.wantTotal)
		}
	}

	// Window ordering: limit/offset slices the same submission order the
	// full list shows.
	_, all := get(t, srv, "/v1/scans")
	full := decode(all)
	_, windowed := get(t, srv, "/v1/scans?limit=1&offset=1")
	win := decode(windowed)
	if len(win.Scans) != 1 || win.Scans[0].ID != full.Scans[1].ID {
		t.Errorf("window [1,2) returned %+v, want job %s", win.Scans, full.Scans[1].ID)
	}
}

func TestV1ResultsPaginationAndFiltering(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeInspectRunner)
	for _, p := range []string{"cc1", "cc2"} {
		submitAndWait(t, s, srv, "/v1/scans", fmt.Sprintf(`{"kind":"inspect","provider":%q}`, p))
	}

	type resultsBody struct {
		Results []ProviderVerdicts `json:"results"`
	}
	decode := func(body []byte) resultsBody {
		t.Helper()
		var rb resultsBody
		if err := json.Unmarshal(body, &rb); err != nil {
			t.Fatalf("decode results: %v (%s)", err, body)
		}
		return rb
	}

	resp, body := get(t, srv, "/v1/results?limit=1&offset=1")
	rb := decode(body)
	if len(rb.Results) != 1 || rb.Results[0].Provider != "cc2" {
		t.Errorf("paginated results = %+v, want just cc2", rb.Results)
	}
	if got := resp.Header.Get("X-Total-Count"); got != "2" {
		t.Errorf("X-Total-Count %q, want 2", got)
	}

	// ?verdict= narrows cells and drops providers left empty.
	_, body = get(t, srv, "/v1/results?verdict=available")
	rb = decode(body)
	if len(rb.Results) != 1 || rb.Results[0].Provider != "cc1" {
		t.Fatalf("verdict=available results = %+v, want just cc1", rb.Results)
	}
	for _, v := range rb.Results[0].Verdicts {
		if v.Availability != "●" {
			t.Errorf("verdict filter leaked cell %+v", v)
		}
	}

	// Glyphs are accepted verbatim too.
	_, glyphBody := get(t, srv, "/v1/results?verdict="+"●")
	if string(glyphBody) != string(body) {
		t.Error("glyph verdict filter differs from its ASCII alias")
	}
}

func TestV1EngineEndpoint(t *testing.T) {
	// Real runner: a cheap discovery scan exercises the session pool.
	s, srv := newTestAPI(t, Config{Workers: 1}, nil)
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"discovery"}`)

	resp, body := get(t, srv, "/v1/engine")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/engine: status %d: %s", resp.StatusCode, body)
	}
	var info EngineInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("decode engine info: %v (%s)", err, body)
	}
	if info.Sessions != 1 || info.SessionMisses != 1 {
		t.Errorf("engine info after one scan: %+v, want 1 session / 1 miss", info)
	}
	if info.Stats.Passes == 0 || info.Stats.FindingMisses == 0 {
		t.Errorf("engine stats empty after a real scan: %+v", info.Stats)
	}
	if len(info.Stats.Epochs) == 0 {
		t.Error("engine info carries no epoch breakdown")
	}
}
