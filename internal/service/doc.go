// Package service is the long-running heart of leaksd: a scan scheduler
// with a bounded job queue, per-job deadlines, retry with exponential
// backoff, an in-memory result store (TTL + LRU + content-hash dedup), a
// recurring-scan facility, and an event hub streaming leakage-verdict
// changes to SSE subscribers. It turns the one-shot experiment entry
// points of internal/experiments into named jobs that many concurrent
// clients can submit, poll, and watch — the production shape the paper's
// Fig. 1 framework takes when it monitors container fleets continuously
// instead of auditing them once.
//
// Determinism carries over from the experiment layer: a scan request's
// identity deliberately excludes the worker count (the concurrency
// contract guarantees byte-identical output at any -j), so two clients
// asking the same question at different parallelism share one cached
// answer.
//
// # Serving path
//
// The HTTP layer (NewHandler) serves the /v1 read endpoints through an
// epoch-keyed response cache (internal/service/respcache). The scheduler
// maintains one serving epoch per endpoint family — jobsEpoch for
// /v1/scans, resultsEpoch for /v1/results, engineEpoch for /v1/engine —
// bumped inside the same critical section as every mutation that can
// change the endpoint's bytes. A response rendered at epoch E is replayed
// with zero heap allocations until the epoch moves, and its strong ETag
// ("<endpoint>-e<E>") lets If-None-Match clients revalidate for free.
// docs/SERVING.md documents the full contract; cmd/leaksload measures it.
package service
