package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/service/respcache"
	"repro/internal/telemetry"
)

// v1Routes is the versioned HTTP surface in one place: NewHandler registers
// exactly these method/pattern pairs, and the docs/openapi.yaml sync test
// walks them against the spec so code and contract cannot drift.
var v1Routes = []string{
	"POST /v1/scans",
	"GET /v1/scans",
	"GET /v1/scans/{id}",
	"GET /v1/results",
	"GET /v1/matrix",
	"GET /v1/channels",
	"GET /v1/providers",
	"GET /v1/runtimes",
	"GET /v1/engine",
	"GET /v1/events",
	"POST /v1/policies",
	"GET /v1/policies",
	"GET /v1/policies/{id}",
	"DELETE /v1/policies/{id}",
	"POST /v1/policies/{id}/rollout",
	"GET /v1/policies/{id}/rollout",
	"GET /v1/cluster",
	"POST /v1/cluster/scans",
	"POST /v1/cluster/shards",
	"GET /v1/cluster/ping",
	"GET /v1/metrics",
	"GET /v1/healthz",
	"GET /v1/version",
}

// cachedEndpoint is one /v1 read endpoint on the zero-alloc serving path:
// a respcache.Cache of prebuilt responses, an epoch source tying entry
// lifetime to the scheduler's mutation counters, and telemetry children
// resolved once at construction (With on a request path allocates a
// handle, which the cache-hit contract forbids).
type cachedEndpoint struct {
	name  string // ETag prefix and metrics label
	cache *respcache.Cache
	// epoch returns the endpoint's serving epoch and whether caching is
	// sound right now (false while the backing state mutates without
	// epoch bumps — /v1/engine during an in-flight scan).
	epoch func() (epoch uint64, cacheable bool)
	// render produces the response body and the X-Total-Count value
	// (-1 = endpoint has no total) for a canonical query against current
	// state. Bodies are byte-identical to what writeJSON would emit.
	render func(respcache.Query) (body []byte, total int, err error)
	// filtered endpoints honour ?provider/?verdict/?limit/?offset; the
	// rest ignore the query string entirely (pre-cache behaviour, kept).
	filtered bool

	hits, misses *telemetry.Counter
	n200, n304   *telemetry.Counter
	seconds      *telemetry.Histogram
}

// newCachedEndpoint wires one endpoint: cache, epoch source, renderer, and
// pre-resolved metric children.
func (a *api) newCachedEndpoint(name string, filtered bool,
	epoch func() (uint64, bool), render func(respcache.Query) ([]byte, int, error)) *cachedEndpoint {
	met := a.sched.Metrics()
	return &cachedEndpoint{
		name:     name,
		cache:    respcache.NewCache(0),
		epoch:    epoch,
		render:   render,
		filtered: filtered,
		hits:     met.HTTPCacheHits.With(name),
		misses:   met.HTTPCacheMisses.With(name),
		n200:     met.HTTPRequests.With(name, "200"),
		n304:     met.HTTPRequests.With(name, "304"),
		seconds:  met.HTTPRequestSeconds.With(name),
	}
}

// staticEpoch is the epoch source of endpoints whose bodies only change
// across process restarts (/v1/channels, /v1/providers, /v1/version).
func staticEpoch() (uint64, bool) { return 0, true }

// ServeHTTP routes cached GET/HEAD endpoints directly — a map lookup on
// the URL path, bypassing both the mux and the request-timeout wrapper
// (context.WithTimeout allocates; a cache hit needs no deadline) — and
// hands everything else to the mux. The same endpoints stay registered on
// the mux so unsupported methods keep their 405 semantics.
func (a *api) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		if ce, ok := a.endpoints[r.URL.Path]; ok {
			a.serveCached(ce, w, r)
			return
		}
	}
	a.mux.ServeHTTP(w, r)
}

// cachedHandler adapts an endpoint for its mux registration (reached only
// for method-mismatch handling; GET/HEAD short-circuit in ServeHTTP).
func (a *api) cachedHandler(path string) http.HandlerFunc {
	ce := a.endpoints[path]
	return func(w http.ResponseWriter, r *http.Request) { a.serveCached(ce, w, r) }
}

// serveCached is the /v1 read hot loop. The steady-state path — canonical
// query parse, epoch load, cache hit, prebuilt entry write — performs zero
// heap allocations; see BenchmarkV1ResultsHit.
func (a *api) serveCached(ce *cachedEndpoint, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := respcache.Query{Limit: respcache.NoLimit}
	if ce.filtered {
		var err error
		if q, err = respcache.ParseQuery(r.URL.RawQuery); err != nil {
			writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			return
		}
		if q.Provider != "" {
			if _, known := a.providers[q.Provider]; !known {
				writeErrorV1(w, http.StatusNotFound, codeNotFound,
					"unknown provider %q (one of %v)", q.Provider, ProviderNames())
				return
			}
		}
		if q.Runtime != "" {
			if _, known := a.runtimes[q.Runtime]; !known {
				writeErrorV1(w, http.StatusNotFound, codeUnknownTarget,
					"unknown runtime %q (one of %v)", q.Runtime, RuntimeNames())
				return
			}
		}
	}

	epoch, cacheable := ce.epoch()
	cacheable = cacheable && !a.cfg.DisableResponseCache
	if cacheable {
		if e, ok := ce.cache.Get(epoch, q); ok {
			ce.hits.Inc()
			ce.finish(w, e, r.Header.Get("If-None-Match"), start)
			return
		}
	}
	ce.misses.Inc()
	body, total, err := ce.render(q)
	if err != nil {
		writeErrorV1(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	if !cacheable {
		// Uncacheable responses carry no ETag and honour no If-None-Match:
		// the body can change without an epoch bump, so a strong validator
		// would lie.
		h := w.Header()
		if total >= 0 {
			h.Set("X-Total-Count", strconv.Itoa(total))
		}
		h.Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		ce.n200.Inc()
		ce.seconds.Observe(time.Since(start).Seconds())
		return
	}
	e := respcache.NewEntry(http.StatusOK, body, respcache.ETagFor(ce.name, epoch), total)
	ce.cache.Put(epoch, q, e)
	ce.finish(w, e, r.Header.Get("If-None-Match"), start)
}

// finish writes a prebuilt entry and records the serving metrics.
func (ce *cachedEndpoint) finish(w http.ResponseWriter, e *respcache.Entry, ifNoneMatch string, start time.Time) {
	if e.Serve(w, ifNoneMatch) == http.StatusNotModified {
		ce.n304.Inc()
	} else {
		ce.n200.Inc()
	}
	ce.seconds.Observe(time.Since(start).Seconds())
}

// encBufPool recycles cold-render encode buffers: a miss borrows a buffer,
// encodes, copies the bytes out for the cache entry, and returns it — the
// render.go pooling pattern from internal/pseudofs applied to the API
// layer.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeJSON renders v exactly as writeJSON does — two-space indent,
// trailing newline — into a standalone byte slice a cache entry can own.
func encodeJSON(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// renderScans is the cold render behind GET /v1/scans: filter, then
// window, then encode. Filters apply before pagination; the total is the
// post-filter count so clients can window through exactly the matching
// set.
func (a *api) renderScans(q respcache.Query) ([]byte, int, error) {
	jobs := a.sched.Jobs()
	filtered := jobs[:0:0]
	for _, j := range jobs {
		if q.Provider != "" && j.Request.Provider != q.Provider {
			continue
		}
		if q.Runtime != "" && j.Request.Runtime != q.Runtime {
			continue
		}
		if q.Verdict != "" && !jobHasVerdict(j, q.Verdict) {
			continue
		}
		filtered = append(filtered, j)
	}
	lo, hi := q.Window(len(filtered))
	body, err := encodeJSON(struct {
		Scans []Job `json:"scans"`
	}{Scans: filtered[lo:hi]})
	return body, len(filtered), err
}

// renderResults is the cold render behind GET /v1/results. ?verdict=
// narrows each provider's cells to one availability and drops providers
// left with none; ?runtime= selects a runtime target's row (runtime
// targets land in the latest-verdict map under their own names when
// matrix or runtime-inspect scans run); pagination windows over the
// provider entries.
func (a *api) renderResults(q respcache.Query) ([]byte, int, error) {
	results := a.sched.Results(q.Provider)
	if q.Runtime != "" {
		filtered := results[:0:0]
		for _, pv := range results {
			if pv.Provider == q.Runtime {
				filtered = append(filtered, pv)
			}
		}
		results = filtered
	}
	if q.Verdict != "" {
		filtered := results[:0:0]
		for _, pv := range results {
			var cells []Verdict
			for _, v := range pv.Verdicts {
				if v.Availability == q.Verdict {
					cells = append(cells, v)
				}
			}
			if len(cells) == 0 {
				continue
			}
			pv.Verdicts = cells
			filtered = append(filtered, pv)
		}
		results = filtered
	}
	lo, hi := q.Window(len(results))
	body, err := encodeJSON(struct {
		Results []ProviderVerdicts `json:"results"`
	}{Results: results[lo:hi]})
	return body, len(results), err
}

func (a *api) renderChannels(respcache.Query) ([]byte, int, error) {
	channels := Channels()
	body, err := encodeJSON(struct {
		Channels []ChannelInfo `json:"channels"`
	}{Channels: channels})
	return body, len(channels), err
}

func (a *api) renderProviders(respcache.Query) ([]byte, int, error) {
	providers := ProviderNames()
	body, err := encodeJSON(struct {
		Providers []string `json:"providers"`
	}{Providers: providers})
	return body, len(providers), err
}

func (a *api) renderRuntimes(respcache.Query) ([]byte, int, error) {
	runtimes := RuntimeNames()
	body, err := encodeJSON(struct {
		Runtimes []string `json:"runtimes"`
	}{Runtimes: runtimes})
	return body, len(runtimes), err
}

// renderMatrix is the cold render behind GET /v1/matrix: the latest
// verdicts of every matrix target (clouds then runtimes, canonical column
// order), shaped like /v1/results but restricted to the matrix column set.
// Targets without verdicts yet are omitted — the matrix fills in as
// KindMatrix (or runtime-inspect) scans complete. ?provider= / ?runtime=
// narrow to one column; ?verdict= narrows cells; pagination windows over
// the target entries.
func (a *api) renderMatrix(q respcache.Query) ([]byte, int, error) {
	var entries []ProviderVerdicts
	for _, name := range MatrixTargetNames() {
		if q.Provider != "" && name != q.Provider {
			continue
		}
		if q.Runtime != "" && name != q.Runtime {
			continue
		}
		rows := a.sched.Results(name)
		for _, pv := range rows {
			if q.Verdict != "" {
				var cells []Verdict
				for _, v := range pv.Verdicts {
					if v.Availability == q.Verdict {
						cells = append(cells, v)
					}
				}
				if len(cells) == 0 {
					continue
				}
				pv.Verdicts = cells
			}
			entries = append(entries, pv)
		}
	}
	lo, hi := q.Window(len(entries))
	body, err := encodeJSON(struct {
		Matrix []ProviderVerdicts `json:"matrix"`
	}{Matrix: entries[lo:hi]})
	return body, len(entries), err
}

// renderEngine snapshots the incremental engine's aggregate cache and
// epoch statistics — session-pool effectiveness plus the summed counters
// of every live session engine.
func (a *api) renderEngine(respcache.Query) ([]byte, int, error) {
	body, err := encodeJSON(a.sched.EngineInfo())
	return body, -1, err
}

func (a *api) renderVersion(respcache.Query) ([]byte, int, error) {
	body, err := encodeJSON(struct {
		Version string `json:"version"`
	}{Version: a.cfg.Version})
	return body, -1, err
}
