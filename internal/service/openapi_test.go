package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
)

// readSpecRoutes hand-parses docs/openapi.yaml (the repo is stdlib-only,
// so no YAML decoder): top-level `paths:` entries sit at two-space indent,
// their HTTP methods at four. Returns "METHOD /path" strings.
func readSpecRoutes(t *testing.T) map[string]bool {
	t.Helper()
	f, err := os.Open("../../docs/openapi.yaml")
	if err != nil {
		t.Fatalf("open spec: %v", err)
	}
	defer f.Close()

	routes := make(map[string]bool)
	inPaths := false
	current := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "paths:":
			inPaths = true
		case inPaths && len(line) > 0 && line[0] != ' ' && line[0] != '#':
			inPaths = false // next top-level key (components:, …)
		case inPaths && strings.HasPrefix(line, "  /") && strings.HasSuffix(line, ":"):
			current = strings.TrimSuffix(strings.TrimSpace(line), ":")
		case inPaths && current != "" && strings.HasPrefix(line, "    ") && !strings.HasPrefix(line, "     "):
			method := strings.TrimSuffix(strings.TrimSpace(line), ":")
			switch method {
			case "get", "post", "put", "delete", "patch", "head", "options":
				routes[strings.ToUpper(method)+" "+current] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read spec: %v", err)
	}
	if len(routes) == 0 {
		t.Fatal("parsed no routes from docs/openapi.yaml — indentation drifted?")
	}
	return routes
}

// TestOpenAPISpecMatchesMux keeps docs/openapi.yaml in sync with the live
// handler: the spec's (method, path) set must equal v1Routes — the slice
// the mux registrations are built from — in both directions, and every
// spec route must be answered by leaksd's own handlers, never the mux's
// plain-text 404/405 fallbacks.
func TestOpenAPISpecMatchesMux(t *testing.T) {
	spec := readSpecRoutes(t)
	served := make(map[string]bool, len(v1Routes))
	for _, r := range v1Routes {
		served[r] = true
	}
	var missing, extra []string
	for r := range served {
		if !spec[r] {
			missing = append(missing, r)
		}
	}
	for r := range spec {
		if !served[r] {
			extra = append(extra, r)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("served routes absent from docs/openapi.yaml: %v", missing)
	}
	if len(extra) > 0 {
		t.Errorf("docs/openapi.yaml routes the handler does not serve: %v", extra)
	}

	s := newTestScheduler(t, Config{Workers: 1}, fakeInspectRunner)
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})
	for r := range spec {
		method, path, _ := strings.Cut(r, " ")
		path = strings.ReplaceAll(path, "{id}", "no-such-id")
		req := httptest.NewRequest(method, path, strings.NewReader("{}"))
		if path == "/v1/events" {
			// SSE streams until disconnect; a pre-cancelled context makes
			// the handler return after the headers.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			req = req.WithContext(ctx)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("%s: 405 — the mux does not register this spec route", r)
			continue
		}
		if rec.Code >= 400 && !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
			t.Errorf("%s: %d with Content-Type %q — mux fallback, not a leaksd handler",
				r, rec.Code, rec.Header().Get("Content-Type"))
		}
	}
}

// TestOpenAPISpecDeclaresCachingContract: every cacheable GET documents
// the ETag header, the If-None-Match parameter, and a 304 response; the
// uncacheable endpoints must not claim a validator.
func TestOpenAPISpecDeclaresCachingContract(t *testing.T) {
	raw, err := os.ReadFile("../../docs/openapi.yaml")
	if err != nil {
		t.Fatal(err)
	}
	// Split the paths section into per-path chunks on two-space indent.
	body := string(raw)
	start := strings.Index(body, "\npaths:\n")
	end := strings.Index(body, "\ncomponents:\n")
	if start < 0 || end < 0 || end < start {
		t.Fatal("cannot locate paths/components sections")
	}
	section := body[start+len("\npaths:\n") : end]
	chunks := make(map[string]string)
	var name string
	var sb strings.Builder
	for _, line := range strings.SplitAfter(section, "\n") {
		if strings.HasPrefix(line, "  /") {
			if name != "" {
				chunks[name] = sb.String()
			}
			name = strings.TrimSuffix(strings.TrimSpace(line), ":")
			sb.Reset()
			continue
		}
		sb.WriteString(line)
	}
	if name != "" {
		chunks[name] = sb.String()
	}

	cached := []string{"/v1/scans", "/v1/results", "/v1/matrix", "/v1/channels", "/v1/providers", "/v1/runtimes", "/v1/engine", "/v1/version"}
	for _, p := range cached {
		chunk, ok := chunks[p]
		if !ok {
			t.Errorf("%s: missing from spec", p)
			continue
		}
		for _, want := range []string{"headers/ETag", "parameters/IfNoneMatch", `"304"`} {
			if !strings.Contains(chunk, want) {
				t.Errorf("%s: spec does not declare %s", p, want)
			}
		}
	}
	for _, p := range []string{"/v1/scans/{id}", "/v1/events", "/v1/metrics", "/v1/healthz"} {
		if strings.Contains(chunks[p], "ETag") {
			t.Errorf("%s: uncacheable endpoint must not declare an ETag", p)
		}
	}
}
