package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postPolicyJSON(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestPolicyAPILifecycle drives the /v1/policies CRUD surface with a
// manual policy: create, list, fetch, delete, and the error paths.
func TestPolicyAPILifecycle(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})

	resp, raw := postPolicyJSON(t, srv, "/v1/policies",
		`{"provider":"cc1","rules":[{"pattern":"/proc/timer_list","action":"deny","channel":"timer interrupts"}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/policies status = %d, body %s; want 201", resp.StatusCode, raw)
	}
	var rec PolicyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode policy record from %s: %v", raw, err)
	}
	if rec.ID == "" || rec.Source != "manual" || rec.Report != nil {
		t.Fatalf("record = %+v; want an ID, manual source, no report", rec)
	}
	if len(rec.Policy.Rules) != 1 || rec.Policy.Rules[0].Pattern != "/proc/timer_list" {
		t.Fatalf("stored rules = %+v; want the submitted deny rule", rec.Policy.Rules)
	}
	if rec.Policy.Seed == 0 {
		t.Fatalf("manual policy seed not defaulted: %+v", rec.Policy)
	}

	// The record shows up in the list and is fetchable by id.
	lresp, err := http.Get(srv.URL + "/v1/policies")
	if err != nil {
		t.Fatalf("GET /v1/policies: %v", err)
	}
	var list struct {
		Policies []PolicyRecord `json:"policies"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decode policy list: %v", err)
	}
	lresp.Body.Close()
	if len(list.Policies) != 1 || list.Policies[0].ID != rec.ID {
		t.Fatalf("list = %+v; want exactly the created policy", list.Policies)
	}
	gresp, err := http.Get(srv.URL + "/v1/policies/" + rec.ID)
	if err != nil {
		t.Fatalf("GET /v1/policies/%s: %v", rec.ID, err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/policies/%s status = %d; want 200", rec.ID, gresp.StatusCode)
	}
	if v := metricValue(t, scrape(t, srv), "leaksd_policies"); v != 1 {
		t.Fatalf("leaksd_policies = %v; want 1", v)
	}

	// Error paths: unknown id, missing/unknown provider, bad rules, and a
	// rollout query before any rollout ran.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/policies/no-such-id", "", http.StatusNotFound},
		{"DELETE", "/v1/policies/no-such-id", "", http.StatusNotFound},
		{"GET", "/v1/policies/" + rec.ID + "/rollout", "", http.StatusNotFound},
		{"POST", "/v1/policies", `{"rules":[]}`, http.StatusBadRequest},
		{"POST", "/v1/policies", `{"provider":"nope"}`, http.StatusNotFound},
		{"POST", "/v1/policies", `{"provider":"cc1","rules":[{"pattern":"","action":"deny"}]}`, http.StatusBadRequest},
		{"POST", "/v1/policies", `{"provider":"cc1","rules":[{"pattern":"/proc/stat","action":"shred"}]}`, http.StatusBadRequest},
		{"POST", "/v1/policies", `{"provider":"cc1","bogus":1}`, http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if tc.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s status = %d, body %s; want %d", tc.method, tc.path, resp.StatusCode, raw, tc.want)
		}
	}

	// Delete is idempotent in outcome: 204 once, 404 after.
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/policies/"+rec.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d; want 204", dresp.StatusCode)
	}
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("second DELETE: %v", err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d; want 404", dresp2.StatusCode)
	}
	if v := metricValue(t, scrape(t, srv), "leaksd_policies"); v != 0 {
		t.Fatalf("leaksd_policies after delete = %v; want 0", v)
	}
}

// TestPolicySynthesizeAndRolloutAPI exercises the happy path end to end:
// synthesize a policy for cc1 over HTTP, confirm the verification report,
// then roll it out and watch it promote.
func TestPolicySynthesizeAndRolloutAPI(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})

	resp, raw := postPolicyJSON(t, srv, "/v1/policies", `{"provider":"cc1"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("synthesize status = %d, body %s; want 201", resp.StatusCode, raw)
	}
	var rec PolicyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode record: %v", err)
	}
	if rec.Source != "synthesized" || rec.Report == nil {
		t.Fatalf("record = %+v; want synthesized source with a report", rec)
	}
	if rec.Report.Closure < 0.9 {
		t.Fatalf("closure = %v; want >= 0.9", rec.Report.Closure)
	}
	if len(rec.Report.BenignFailures) != 0 {
		t.Fatalf("benign failures = %v; want none", rec.Report.BenignFailures)
	}
	if len(rec.Policy.Rules) == 0 {
		t.Fatalf("synthesized policy has no rules")
	}
	sc := scrape(t, srv)
	if v := metricValue(t, sc, `leaksd_policy_syntheses_total{provider="cc1"}`); v != 1 {
		t.Fatalf("syntheses counter = %v; want 1", v)
	}

	rresp, rraw := postPolicyJSON(t, srv, "/v1/policies/"+rec.ID+"/rollout", `{"fleet":3}`)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("rollout status = %d, body %s; want 200", rresp.StatusCode, rraw)
	}
	var st RolloutStatus
	if err := json.Unmarshal(rraw, &st); err != nil {
		t.Fatalf("decode rollout status: %v", err)
	}
	if string(st.Result.Phase) != "done" {
		t.Fatalf("rollout result = %+v; want phase done", st.Result)
	}
	if st.Result.ChannelsClosed == 0 || st.Result.FleetSize != 3 {
		t.Fatalf("rollout result = %+v; want closures over a 3-container fleet", st.Result)
	}

	// The outcome is queryable and visible in the metric families.
	gresp, err := http.Get(srv.URL + "/v1/policies/" + rec.ID + "/rollout")
	if err != nil {
		t.Fatalf("GET rollout: %v", err)
	}
	var got RolloutStatus
	if err := json.NewDecoder(gresp.Body).Decode(&got); err != nil {
		t.Fatalf("decode stored rollout: %v", err)
	}
	gresp.Body.Close()
	if got.Result.Phase != st.Result.Phase || got.Policy != rec.ID {
		t.Fatalf("stored rollout = %+v; want the POST response persisted", got)
	}
	sc = scrape(t, srv)
	if v := metricValue(t, sc, `leaksd_policy_rollouts_total{provider="cc1",phase="done"}`); v != 1 {
		t.Fatalf("rollouts{done} = %v; want 1", v)
	}
	if v := metricValue(t, sc, `leaksd_policy_channels_closed{provider="cc1"}`); v == 0 {
		t.Fatalf("channels_closed gauge = %v; want > 0", v)
	}
	if v := metricValue(t, sc, `leaksd_policy_rollbacks_total{provider="cc1"}`); v != 0 {
		t.Fatalf("rollbacks = %v; want 0 on a clean promotion", v)
	}
}

// TestPolicyRolloutAPIRollback injects a benign-breaking manual policy and
// confirms the canary controller's auto-rollback is visible in the HTTP
// response, the stored record, the leaksd_policy_* metrics, and the event
// stream.
func TestPolicyRolloutAPIRollback(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})
	events, stop := sseClient(t, srv)
	defer stop()

	_, raw := postPolicyJSON(t, srv, "/v1/policies",
		`{"provider":"cc1","rules":[{"pattern":"/proc/cpuinfo","action":"deny","channel":"injected breakage"}]}`)
	var rec PolicyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode record from %s: %v", raw, err)
	}

	rresp, rraw := postPolicyJSON(t, srv, "/v1/policies/"+rec.ID+"/rollout", `{"fleet":4,"canary_percent":25}`)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("rollout status = %d, body %s; want 200", rresp.StatusCode, rraw)
	}
	var st RolloutStatus
	if err := json.Unmarshal(rraw, &st); err != nil {
		t.Fatalf("decode rollout status: %v", err)
	}
	if string(st.Result.Phase) != "rolled_back" {
		t.Fatalf("result = %+v; want rolled_back", st.Result)
	}
	if len(st.Result.BenignFailures) == 0 || st.Result.BenignFailures[0] != "/proc/cpuinfo" {
		t.Fatalf("benign failures = %v; want the denied /proc/cpuinfo", st.Result.BenignFailures)
	}
	if st.Result.Reason == "" {
		t.Fatalf("rolled-back result carries no reason: %+v", st.Result)
	}

	// The rollback is an alerting signal: counter families move, and the
	// canary gauge records the set that was reverted.
	sc := scrape(t, srv)
	if v := metricValue(t, sc, `leaksd_policy_rollbacks_total{provider="cc1"}`); v != 1 {
		t.Fatalf("rollbacks = %v; want 1", v)
	}
	if v := metricValue(t, sc, `leaksd_policy_benign_failures_total{provider="cc1"}`); v < 1 {
		t.Fatalf("benign failures counter = %v; want >= 1", v)
	}
	if v := metricValue(t, sc, `leaksd_policy_rollouts_total{provider="cc1",phase="rolled_back"}`); v != 1 {
		t.Fatalf("rollouts{rolled_back} = %v; want 1", v)
	}
	if v := metricValue(t, sc, `leaksd_policy_canary_containers{provider="cc1"}`); v != 1 {
		t.Fatalf("canary gauge = %v; want the 1-container canary set", v)
	}

	// The event stream carried the rollout: a canary phase event and the
	// terminal rolled_back event, all tagged with the policy id, provider,
	// and world epoch.
	var sawCanary, sawRollback bool
	deadline := time.After(10 * time.Second)
	for !(sawCanary && sawRollback) {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream closed before rollout events (canary=%v rollback=%v)", sawCanary, sawRollback)
			}
			if ev.Policy != rec.ID {
				continue
			}
			if ev.Provider != "cc1" {
				t.Fatalf("policy event without provider: %+v", ev)
			}
			switch {
			case ev.Type == EventPolicy && ev.Phase == "canary":
				sawCanary = true
			case ev.Type == EventPolicy && ev.Phase == "rolled_back":
				if ev.Reason == "" {
					t.Fatalf("rolled_back event without reason: %+v", ev)
				}
				sawRollback = true
			}
		case <-deadline:
			t.Fatalf("timed out waiting for rollout events (canary=%v rollback=%v)", sawCanary, sawRollback)
		}
	}
}

// TestScanVerdictEventsCarryProviderAndEpoch runs one real inspection scan
// and checks the enriched verdict events: every verdict frame names its
// provider and the engine epoch it was observed at.
func TestScanVerdictEventsCarryProviderAndEpoch(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, nil)
	events, stop := sseClient(t, srv)
	defer stop()

	resp, job := postScanJSON(t, srv, `{"kind":"inspect","provider":"cc1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d; want 202", resp.StatusCode)
	}
	pollScanDone(t, srv, job.ID)

	deadline := time.After(30 * time.Second)
	verdicts := 0
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream closed after %d verdicts", verdicts)
			}
			switch ev.Type {
			case EventVerdict:
				if ev.Provider != "cc1" {
					t.Fatalf("verdict event without provider: %+v", ev)
				}
				if ev.Epoch == 0 {
					t.Fatalf("verdict event without engine epoch: %+v", ev)
				}
				verdicts++
			case EventScanDone:
				if verdicts == 0 {
					t.Fatalf("scan_done before any verdict event")
				}
				if ev.Provider != "cc1" || ev.Epoch == 0 {
					t.Fatalf("scan_done missing provider/epoch: %+v", ev)
				}
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for scan events (%d verdicts so far)", verdicts)
		}
	}
}
