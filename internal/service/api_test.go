package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newTestAPI builds a started scheduler + httptest server around the leaksd
// handler. runner == nil keeps the real experiment-backed executor.
func newTestAPI(t *testing.T, cfg Config, runner func(context.Context, ScanRequest) (*ScanResult, error)) (*Scheduler, *httptest.Server) {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = instantSleep
	}
	s := New(cfg, nil)
	if runner != nil {
		s.SetRunner(runner)
	}
	s.Start()
	srv := httptest.NewServer(NewHandler(APIConfig{
		Scheduler: s,
		Version:   "leaksd test (rev deadbeef)",
		Heartbeat: 50 * time.Millisecond,
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		srv.Close()
	})
	return s, srv
}

func postScanJSON(t *testing.T, srv *httptest.Server, body string) (*http.Response, Job) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/scans", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /scans: %v", err)
	}
	defer resp.Body.Close()
	var job Job
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("decode job from %s: %v", raw, err)
		}
	}
	return resp, job
}

func pollScanDone(t *testing.T, srv *httptest.Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/scans/" + id)
		if err != nil {
			t.Fatalf("GET /scans/%s: %v", id, err)
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /scans/%s: %v", id, err)
		}
		if job.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scan %s never finished", id)
	return Job{}
}

// metricValue extracts one sample (by exact name+labels prefix) from a
// Prometheus text scrape. A family whose only child has never been touched
// renders no sample line; that reads as 0.
func metricValue(t *testing.T, scrape, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
			if err != nil {
				t.Fatalf("parse metric line %q: %v", line, err)
			}
			return v
		}
	}
	family := sample
	if i := strings.IndexByte(family, '{'); i >= 0 {
		family = family[:i]
	}
	if !strings.Contains(scrape, "# TYPE "+family+" ") {
		t.Fatalf("family %q not present in scrape:\n%s", family, scrape)
	}
	return 0
}

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type = %q; want the 0.0.4 exposition format", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// sseClient tails /events in a goroutine, decoding data frames onto a
// channel until the stream ends.
func sseClient(t *testing.T, srv *httptest.Server) (<-chan Event, func()) {
	t.Helper()
	req, _ := http.NewRequest("GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	out := make(chan Event, 4096)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue // event: lines, heartbeats, separators
			}
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil {
				out <- ev
			}
		}
	}()
	return out, func() { resp.Body.Close() }
}

func TestAPIScanLifecycle(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 2}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})

	resp, job := postScanJSON(t, srv, `{"kind":"table1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d; want 202", resp.StatusCode)
	}
	if job.ID == "" || job.Status == "" {
		t.Fatalf("job = %+v; want an ID and status", job)
	}

	done := pollScanDone(t, srv, job.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("job = %+v; want done with embedded result", done)
	}

	// The job shows up in the list.
	lresp, err := http.Get(srv.URL + "/scans")
	if err != nil {
		t.Fatalf("GET /scans: %v", err)
	}
	var list struct {
		Scans []Job `json:"scans"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	lresp.Body.Close()
	if len(list.Scans) != 1 || list.Scans[0].ID != job.ID {
		t.Fatalf("list = %+v; want exactly the submitted job", list.Scans)
	}

	// Latest verdicts are queryable, filtered by provider.
	rresp, err := http.Get(srv.URL + "/results?provider=local")
	if err != nil {
		t.Fatalf("GET /results: %v", err)
	}
	var results struct {
		Results []ProviderVerdicts `json:"results"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&results); err != nil {
		t.Fatalf("decode results: %v", err)
	}
	rresp.Body.Close()
	if len(results.Results) != 1 || results.Results[0].Provider != "local" || len(results.Results[0].Verdicts) != 2 {
		t.Fatalf("results = %+v; want local with two verdicts", results.Results)
	}
}

func TestAPIErrorPaths(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/scans", `{not json`, http.StatusBadRequest},
		{"POST", "/scans", `{"kind":"warp-drive"}`, http.StatusBadRequest},
		{"POST", "/scans", `{"kind":"inspect"}`, http.StatusBadRequest},
		{"POST", "/scans", `{"kind":"table1","bogus_field":1}`, http.StatusBadRequest},
		{"GET", "/scans/scan-999999", "", http.StatusNotFound},
		{"GET", "/results?provider=mars", "", http.StatusNotFound},
		{"DELETE", "/scans", "", http.StatusMethodNotAllowed},
		{"GET", "/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if tc.method == "POST" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s = %d; want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestAPIIntrospectionEndpoints(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})

	var channels struct {
		Channels []ChannelInfo `json:"channels"`
	}
	resp, err := http.Get(srv.URL + "/channels")
	if err != nil {
		t.Fatalf("GET /channels: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&channels); err != nil {
		t.Fatalf("decode channels: %v", err)
	}
	resp.Body.Close()
	if len(channels.Channels) == 0 {
		t.Fatal("channel registry empty over the API")
	}

	var providers struct {
		Providers []string `json:"providers"`
	}
	resp, err = http.Get(srv.URL + "/providers")
	if err != nil {
		t.Fatalf("GET /providers: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&providers); err != nil {
		t.Fatalf("decode providers: %v", err)
	}
	resp.Body.Close()
	if len(providers.Providers) != 7 { // local, lxc, cc1..cc5
		t.Fatalf("providers = %v; want the 7 Table I profiles", providers.Providers)
	}

	var health struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		Draining bool   `json:"draining"`
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Draining || !strings.Contains(health.Version, "leaksd test") {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatalf("GET /version: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte("deadbeef")) {
		t.Fatalf("/version = %s; want the build string", raw)
	}
}

// TestAPIAcceptance is the PR's acceptance scenario: at least eight
// overlapping scans through the HTTP API, queue-depth and cache-hit
// metrics observably moving on /metrics, verdicts arriving over SSE, and
// a graceful shutdown that drains in-flight jobs without losing results.
func TestAPIAcceptance(t *testing.T) {
	gate := make(chan struct{}, 64) // one token per permitted scan execution
	sched, srv := newTestAPI(t, Config{Workers: 1, QueueCap: 32}, func(ctx context.Context, req ScanRequest) (*ScanResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &ScanResult{
			Request:  req,
			Rendered: fmt.Sprintf("acceptance scan seed=%d", req.Seed),
			Verdicts: []Verdict{{
				Provider: "local", Channel: fmt.Sprintf("ch-%d", req.Seed), Availability: "●",
			}},
		}, nil
	})

	events, closeSSE := sseClient(t, srv)
	defer closeSSE()

	// Phase 1 — eight overlapping scans. One worker and a gated runner
	// guarantee genuine overlap: while scan 1 executes, scans 2..8 queue.
	const n = 8
	ids := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		resp, job := postScanJSON(t, srv, fmt.Sprintf(`{"kind":"table1","seed":%d}`, i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: status %d; want 202", i, resp.StatusCode)
		}
		ids = append(ids, job.ID)
	}

	// Queue depth is visible on /metrics while the backlog exists.
	if depth := metricValue(t, scrape(t, srv), "leaksd_queue_depth"); depth < 1 {
		t.Fatalf("queue depth = %g with 8 submitted and 1 worker; want >= 1", depth)
	}

	// Release the backlog and wait for every scan to land.
	for i := 0; i < n; i++ {
		gate <- struct{}{}
	}
	for _, id := range ids {
		if done := pollScanDone(t, srv, id); done.Status != StatusDone {
			t.Fatalf("scan %s = %s (%s); want done", id, done.Status, done.Error)
		}
	}

	// Phase 2 — resubmitting an identical config is a cache hit: HTTP 200
	// (not 202), no recompute, and the hit counter moves.
	before := metricValue(t, scrape(t, srv), "leaksd_cache_hits_total")
	resp, hit := postScanJSON(t, srv, `{"kind":"table1","seed":1,"workers":4}`)
	if resp.StatusCode != http.StatusOK || !hit.CacheHit {
		t.Fatalf("duplicate scan: status %d cache_hit %v; want 200 + hit", resp.StatusCode, hit.CacheHit)
	}
	if hit.Result == nil || hit.Result.Rendered != "acceptance scan seed=1" {
		t.Fatalf("cache hit result = %+v; want the stored render", hit.Result)
	}
	after := metricValue(t, scrape(t, srv), "leaksd_cache_hits_total")
	if after <= before {
		t.Fatalf("cache-hit counter did not move: %g -> %g", before, after)
	}
	if misses := metricValue(t, scrape(t, srv), "leaksd_cache_misses_total"); misses < n {
		t.Fatalf("cache misses = %g; want >= %d", misses, n)
	}

	// Phase 3 — the SSE stream carried one verdict per scan plus the
	// lifecycle events (cache hits emit scan_done without verdicts).
	verdicts := make(map[string]bool)
	doneEvents := 0
	timeout := time.After(10 * time.Second)
	for len(verdicts) < n || doneEvents < n+1 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("SSE stream ended early: %d verdicts, %d done events", len(verdicts), doneEvents)
			}
			switch ev.Type {
			case EventVerdict:
				if ev.Provider != "local" || ev.Availability != "●" || !ev.Changed {
					t.Fatalf("verdict event = %+v", ev)
				}
				verdicts[ev.Channel] = true
			case EventScanDone:
				doneEvents++
			}
		case <-timeout:
			t.Fatalf("SSE starved: %d/%d verdicts, %d done events", len(verdicts), n, doneEvents)
		}
	}

	// Phase 4 — graceful shutdown drains in-flight work without losing
	// results. Submit a scan, leave it blocked, then drain.
	resp, lastJob := postScanJSON(t, srv, `{"kind":"table1","seed":99}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain scan: status %d", resp.StatusCode)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- sched.Shutdown(ctx)
	}()
	// While draining, new submissions are refused with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, _ := postScanJSON(t, srv, `{"kind":"table1","seed":100}`)
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never refused submissions while draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	gate <- struct{}{} // let the in-flight scan finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if job, ok := sched.JobByID(lastJob.ID); !ok || job.Status != StatusDone || job.Result == nil {
		t.Fatalf("in-flight job after drain = %+v; want done with result", job)
	}
	// The drain closed the SSE stream.
	select {
	case _, ok := <-events:
		for ok {
			_, ok = <-events
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after drain")
	}
}
