package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
)

// sessionPool caches engine-backed experiment sessions across scheduler
// jobs, so a recurring scan's second tick reuses the incremental engine
// (and its render caches) instead of rebuilding the world and re-reading
// every pseudo-file. Sessions are only used for chaos-free requests:
//
//   - a chaos world's fault streams advance on every read, so re-running a
//     scan over a reused world would not be byte-identical to a cold run —
//     chaos requests must pay full cost, and the engine bypasses its caches
//     under fault injection anyway;
//   - a chaos-free session world is frozen at the canonical observation
//     instant, so every pass over it is byte-identical to a cold scan (the
//     engine's invariant), and repeated passes are pure cache hits.
//
// The pool is bounded: beyond cap, the least-recently-used session is
// evicted (seed-varied campaigns stream through without hoarding worlds).
type sessionPool struct {
	mu     sync.Mutex
	cap    int
	tick   uint64 // LRU clock
	insp   map[string]*inspectEntry
	disc   map[int64]*discoveryEntry
	hits   uint64 // session reuses
	misses uint64 // session builds
}

type inspectEntry struct {
	mu   sync.Mutex // serializes passes over one session's world
	s    *experiments.InspectSession
	err  error
	last uint64
}

type discoveryEntry struct {
	mu   sync.Mutex
	s    *experiments.DiscoverySession
	last uint64
}

// defaultSessionCap bounds the pool. Table I alone needs six inspect
// sessions; 16 leaves room for a couple of seed-varied campaigns before
// LRU pressure kicks in.
const defaultSessionCap = 16

func newSessionPool(cap int) *sessionPool {
	if cap <= 0 {
		cap = defaultSessionCap
	}
	return &sessionPool{
		cap:  cap,
		insp: make(map[string]*inspectEntry),
		disc: make(map[int64]*discoveryEntry),
	}
}

// inspect runs one provider inspection through a pooled session. The first
// request for a (provider, seed) pair builds the session (all engine cache
// misses — byte-identical to the one-shot path); later requests are served
// from the session's caches with zero re-renders.
func (p *sessionPool) inspect(prof cloud.ProviderProfile, seed int64, workers int) (experiments.CloudInspection, error) {
	return p.inspectChannels(prof, seed, workers, core.TableIChannels())
}

// inspectChannels is inspect with an explicit channel registry. The session
// (and its engine caches) is shared across channel sets — cross-validation
// is channel-set independent, RollUp is post-processing — so a Table I scan
// and a matrix scan of the same target reuse one world.
func (p *sessionPool) inspectChannels(prof cloud.ProviderProfile, seed int64, workers int, channels []core.Channel) (experiments.CloudInspection, error) {
	key := fmt.Sprintf("%s\x00%d", prof.Name, seed)
	p.mu.Lock()
	e, ok := p.insp[key]
	if ok {
		p.hits++
	} else {
		p.misses++
		e = &inspectEntry{}
		e.mu.Lock() // hold until built; followers queue on the entry lock
		p.insp[key] = e
	}
	e.last = p.tickLocked()
	if !ok {
		p.evictLocked()
	}
	p.mu.Unlock()

	if !ok {
		s, err := experiments.NewInspectSession(prof, chaos.Spec{}, seed)
		e.s, e.err = s, err
		if err != nil {
			p.mu.Lock()
			delete(p.insp, key) // do not cache a broken world
			p.mu.Unlock()
		}
		e.mu.Unlock()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return experiments.CloudInspection{}, e.err
	}
	return e.s.InspectChannels(channels, workers), nil
}

// table1 runs the full six-provider Table I sweep through pooled sessions,
// in profile order (the result slice order the renderer expects). Provider
// failures are folded into the per-provider Err field exactly like the
// one-shot sweep; the error return is non-nil only when every provider
// failed or ctx was cancelled mid-sweep.
func (p *sessionPool) table1(ctx context.Context, seed int64, workers int) (*experiments.Table1Result, error) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	ins := make([]experiments.CloudInspection, len(profiles))
	failed := 0
	var first error
	for i, prof := range profiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in, err := p.inspect(prof, seed, workers)
		if err != nil {
			ins[i] = experiments.CloudInspection{Provider: prof.Name, Err: err}
			if first == nil {
				first = err
			}
			failed++
			continue
		}
		ins[i] = in
	}
	if failed == len(profiles) {
		return nil, fmt.Errorf("experiments: table 1: all %d provider inspections failed, first: %w",
			failed, first)
	}
	return &experiments.Table1Result{Inspections: ins}, nil
}

// matrix runs the runtime-aware sweep through pooled sessions, in matrix
// column order (CC1–CC5 then the runtime targets). The CC1–CC5 sessions
// are the same worlds table1 pools — a recurring matrix scan's cloud
// columns are engine cache hits after any Table I scan, and vice versa.
// Failures fold into per-target Err exactly like table1.
func (p *sessionPool) matrix(ctx context.Context, seed int64, workers int) (*experiments.MatrixResult, error) {
	targets := cloud.MatrixTargets()
	ins := make([]experiments.CloudInspection, len(targets))
	failed := 0
	var first error
	for i, prof := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in, err := p.inspectChannels(prof, seed, workers, core.MatrixChannels())
		if err != nil {
			ins[i] = experiments.CloudInspection{Provider: prof.Name, Err: err}
			if first == nil {
				first = err
			}
			failed++
			continue
		}
		ins[i] = in
	}
	if failed == len(targets) {
		return nil, fmt.Errorf("experiments: matrix sweep: all %d target inspections failed, first: %w",
			failed, first)
	}
	return &experiments.MatrixResult{Inspections: ins}, nil
}

// discovery runs the systematic sweep through a pooled testbed session.
func (p *sessionPool) discovery(seed int64, workers int) *experiments.DiscoveryResult {
	p.mu.Lock()
	e, ok := p.disc[seed]
	if ok {
		p.hits++
	} else {
		p.misses++
		e = &discoveryEntry{}
		e.mu.Lock()
		p.disc[seed] = e
	}
	e.last = p.tickLocked()
	if !ok {
		p.evictLocked()
	}
	p.mu.Unlock()

	if !ok {
		e.s = experiments.NewDiscoverySession(chaos.Spec{}, seed)
		e.mu.Unlock()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Discover(workers)
}

// tickLocked advances the LRU clock. Callers hold p.mu.
func (p *sessionPool) tickLocked() uint64 {
	p.tick++
	return p.tick
}

// evictLocked drops least-recently-used sessions until the pool fits its
// cap. Callers hold p.mu. An evicted session that is still mid-pass keeps
// running — eviction only forgets the pool's pointer.
func (p *sessionPool) evictLocked() {
	for len(p.insp)+len(p.disc) > p.cap {
		var (
			oldest   uint64 = ^uint64(0)
			inspKey  string
			discKey  int64
			fromInsp bool
			found    bool
		)
		for k, e := range p.insp {
			if e.last < oldest {
				oldest, inspKey, fromInsp, found = e.last, k, true, true
			}
		}
		for k, e := range p.disc {
			if e.last < oldest {
				oldest, discKey, fromInsp, found = e.last, k, false, true
			}
		}
		if !found {
			return
		}
		if fromInsp {
			delete(p.insp, inspKey)
		} else {
			delete(p.disc, discKey)
		}
	}
}

// EngineInfo is the aggregate engine view the /v1/engine endpoint serves:
// session-pool effectiveness plus the summed cache counters of every live
// session engine.
type EngineInfo struct {
	// Sessions is the number of live pooled sessions.
	Sessions int `json:"sessions"`
	// SessionHits / SessionMisses count pool lookups that reused vs built
	// a session world.
	SessionHits   uint64 `json:"session_hits"`
	SessionMisses uint64 `json:"session_misses"`
	// Stats is the element-wise sum of every live session engine's
	// counters (see engine.Stats).
	Stats engine.Stats `json:"stats"`
	// SnapshotRestores counts session worlds reinstated from a
	// copy-on-write snapshot instead of a full rebuild (process-wide,
	// covers the CLI experiment paths too).
	SnapshotRestores uint64 `json:"snapshot_restores"`
}

// info snapshots the pool. Session engines are read without taking entry
// locks — engine.Stats is internally synchronized.
func (p *sessionPool) info() EngineInfo {
	p.mu.Lock()
	insp := make([]*inspectEntry, 0, len(p.insp))
	for _, e := range p.insp {
		insp = append(insp, e)
	}
	disc := make([]*discoveryEntry, 0, len(p.disc))
	for _, e := range p.disc {
		disc = append(disc, e)
	}
	out := EngineInfo{
		Sessions:         len(p.insp) + len(p.disc),
		SessionHits:      p.hits,
		SessionMisses:    p.misses,
		SnapshotRestores: experiments.SnapshotRestores(),
	}
	p.mu.Unlock()
	for _, e := range insp {
		e.mu.Lock()
		if e.s != nil {
			out.Stats = out.Stats.Add(e.s.EngineStats())
		}
		e.mu.Unlock()
	}
	for _, e := range disc {
		e.mu.Lock()
		if e.s != nil {
			out.Stats = out.Stats.Add(e.s.EngineStats())
		}
		e.mu.Unlock()
	}
	return out
}
