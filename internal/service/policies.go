package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/policy"
)

// PolicyRequest is the POST /v1/policies body. Without Rules the service
// synthesizes a policy from the provider's mined benign surface and
// verifies it; with Rules the policy is stored as-is ("manual" source) —
// the path operators use for hand-written hardening and the rollback tests
// use for injected breakage.
type PolicyRequest struct {
	Provider string `json:"provider"`
	// Seed selects the mining/verification world (0 = the canonical
	// inspection seed).
	Seed int64 `json:"seed,omitempty"`
	// Workers / Containers tune the miner (0 = defaults).
	Workers    int `json:"workers,omitempty"`
	Containers int `json:"containers,omitempty"`
	// ChaosRate / ChaosSeed arm fault injection on the mining world.
	ChaosRate float64 `json:"chaos_rate,omitempty"`
	ChaosSeed int64   `json:"chaos_seed,omitempty"`
	// Rules bypasses synthesis with a hand-written rule list.
	Rules []policy.Rule `json:"rules,omitempty"`
}

// RolloutRequest is the POST /v1/policies/{id}/rollout body. Zero values
// select the canary controller's defaults (20% canary, 3 healthy epochs,
// 5 ticks per epoch) and a 5-container fleet.
type RolloutRequest struct {
	Fleet         int     `json:"fleet,omitempty"`
	CanaryPercent int     `json:"canary_percent,omitempty"`
	HealthyEpochs int     `json:"healthy_epochs,omitempty"`
	TicksPerEpoch int     `json:"ticks_per_epoch,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	ChaosRate     float64 `json:"chaos_rate,omitempty"`
	ChaosSeed     int64   `json:"chaos_seed,omitempty"`
}

// RolloutStatus is the recorded outcome of a policy's latest rollout —
// what GET /v1/policies/{id}/rollout serves.
type RolloutStatus struct {
	Policy     string        `json:"policy"`
	Provider   string        `json:"provider"`
	Fleet      int           `json:"fleet"`
	StartedAt  time.Time     `json:"started_at"`
	FinishedAt time.Time     `json:"finished_at"`
	Result     policy.Result `json:"result"`
}

// PolicyRecord is one stored policy with its provenance, verification
// report (synthesized policies only), and latest rollout.
type PolicyRecord struct {
	ID        string         `json:"id"`
	Source    string         `json:"source"` // "synthesized" | "manual"
	CreatedAt time.Time      `json:"created_at"`
	Policy    policy.Policy  `json:"policy"`
	Report    *policy.Report `json:"report,omitempty"`
	Rollout   *RolloutStatus `json:"rollout,omitempty"`
}

// policyManager is the in-memory policy store. Records are snapshots on
// the way out, so handlers never leak the guarded pointers.
type policyManager struct {
	mu    sync.Mutex
	seq   int
	order []string
	recs  map[string]*PolicyRecord
}

func newPolicyManager() *policyManager {
	return &policyManager{recs: make(map[string]*PolicyRecord)}
}

func (m *policyManager) add(rec PolicyRecord) PolicyRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	rec.ID = fmt.Sprintf("pol-%06d", m.seq)
	m.recs[rec.ID] = &rec
	m.order = append(m.order, rec.ID)
	return rec
}

func (m *policyManager) get(id string) (PolicyRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return PolicyRecord{}, false
	}
	return *rec, true
}

func (m *policyManager) list() []PolicyRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PolicyRecord, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, *m.recs[id])
	}
	return out
}

func (m *policyManager) delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.recs[id]; !ok {
		return false
	}
	delete(m.recs, id)
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

func (m *policyManager) setRollout(id string, st RolloutStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.recs[id]; ok {
		rec.Rollout = &st
	}
}

func (m *policyManager) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// chaosSpec mirrors ScanRequest.Normalize's chaos handling: rate 0 is
// chaos-off, rate > 0 defaults the seed to 1 like the CLI flag.
func chaosSpec(rate float64, seed int64) chaos.Spec {
	if rate <= 0 {
		return chaos.Spec{}
	}
	if seed == 0 {
		seed = 1
	}
	return chaos.Spec{Rate: rate, Seed: seed}
}

// postPoliciesV1 creates a policy: synthesized from the provider's benign
// trace by default, stored verbatim when the body carries explicit rules.
func (a *api) postPoliciesV1(w http.ResponseWriter, r *http.Request) {
	var req PolicyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Provider == "" {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest,
			"provider is required (one of %v)", ProviderNames())
		return
	}
	profile, ok := ProviderByName(req.Provider)
	if !ok {
		writeErrorV1(w, http.StatusNotFound, codeNotFound,
			"unknown provider %q (one of %v)", req.Provider, ProviderNames())
		return
	}
	opts := policy.Options{
		Containers: req.Containers,
		Workers:    req.Workers,
		Chaos:      chaosSpec(req.ChaosRate, req.ChaosSeed),
	}
	rec := PolicyRecord{CreatedAt: a.cfg.Now()}
	if len(req.Rules) > 0 {
		seed := req.Seed
		if seed == 0 {
			seed = policy.DefaultSeed
		}
		pol := policy.Policy{Provider: req.Provider, Seed: seed, Rules: req.Rules}
		if _, err := pol.PseudoRules(); err != nil {
			writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "%v", err)
			return
		}
		rec.Source = "manual"
		rec.Policy = pol
	} else {
		pol, rep, err := policy.Generate(profile, req.Seed, opts)
		if err != nil {
			writeErrorV1(w, http.StatusInternalServerError, codeInternal, "%v", err)
			return
		}
		rec.Source = "synthesized"
		rec.Policy = pol
		rec.Report = &rep
		a.sched.Metrics().PolicySyntheses.With(req.Provider).Inc()
	}
	rec = a.policies.add(rec)
	a.sched.Metrics().Policies.With().Set(float64(a.policies.len()))
	writeJSON(w, http.StatusCreated, rec)
}

func (a *api) getPoliciesV1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Policies []PolicyRecord `json:"policies"`
	}{Policies: a.policies.list()})
}

func (a *api) getPolicyV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := a.policies.get(id)
	if !ok {
		writeErrorV1(w, http.StatusNotFound, codeNotFound, "no such policy %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (a *api) deletePolicyV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !a.policies.delete(id) {
		writeErrorV1(w, http.StatusNotFound, codeNotFound, "no such policy %q", id)
		return
	}
	a.sched.Metrics().Policies.With().Set(float64(a.policies.len()))
	w.WriteHeader(http.StatusNoContent)
}

// postPolicyRolloutV1 runs the staged canary rollout for one stored policy
// against a fresh fleet of the policy's provider, streaming phase and
// verdict events onto the /v1/events feed as the controller observes them.
// The call is synchronous: the response is the terminal RolloutStatus.
func (a *api) postPolicyRolloutV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := a.policies.get(id)
	if !ok {
		writeErrorV1(w, http.StatusNotFound, codeNotFound, "no such policy %q", id)
		return
	}
	var req RolloutRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	profile, ok := ProviderByName(rec.Policy.Provider)
	if !ok {
		writeErrorV1(w, http.StatusInternalServerError, codeInternal,
			"policy %s references unknown provider %q", id, rec.Policy.Provider)
		return
	}
	fleetSize := req.Fleet
	if fleetSize <= 0 {
		fleetSize = 5
	}
	fleet, err := policy.NewFleet(profile, chaosSpec(req.ChaosRate, req.ChaosSeed),
		rec.Policy.Seed, fleetSize)
	if err != nil {
		writeErrorV1(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	cfg := policy.RolloutConfig{
		CanaryPercent: req.CanaryPercent,
		HealthyEpochs: req.HealthyEpochs,
		TicksPerEpoch: req.TicksPerEpoch,
		Workers:       req.Workers,
	}
	provider := rec.Policy.Provider
	started := a.cfg.Now()
	res, err := fleet.Rollout(rec.Policy, cfg, func(e policy.Event) {
		ev := Event{
			Provider: provider,
			Epoch:    e.Epoch,
			Policy:   id,
			Phase:    string(e.Phase),
		}
		if e.Channel == "" {
			ev.Type = EventPolicy
			ev.Reason = e.Reason
		} else {
			ev.Type = EventVerdict
			ev.Channel = e.Channel
			ev.Availability = e.Availability
			ev.Changed = e.Changed
			ev.Previous = e.Previous
		}
		a.sched.publish(ev)
	})
	if err != nil {
		writeErrorV1(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}

	met := a.sched.Metrics()
	met.PolicyRollouts.With(provider, string(res.Phase)).Inc()
	met.PolicyCanaryContainers.With(provider).Set(float64(res.CanarySize))
	met.PolicyChannelsClosed.With(provider).Set(float64(res.ChannelsClosed))
	if res.Phase == policy.PhaseRolledBack {
		met.PolicyRollbacks.With(provider).Inc()
		met.PolicyBenignFailures.With(provider).Add(float64(len(res.BenignFailures)))
	}
	st := RolloutStatus{
		Policy:     id,
		Provider:   provider,
		Fleet:      fleetSize,
		StartedAt:  started,
		FinishedAt: a.cfg.Now(),
		Result:     res,
	}
	a.policies.setRollout(id, st)
	writeJSON(w, http.StatusOK, st)
}

func (a *api) getPolicyRolloutV1(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := a.policies.get(id)
	if !ok {
		writeErrorV1(w, http.StatusNotFound, codeNotFound, "no such policy %q", id)
		return
	}
	if rec.Rollout == nil {
		writeErrorV1(w, http.StatusNotFound, codeNotFound, "policy %q has no rollout yet", id)
		return
	}
	writeJSON(w, http.StatusOK, rec.Rollout)
}
