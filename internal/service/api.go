package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
)

// APIConfig wires the HTTP layer. Scheduler is required; everything else
// has defaults.
type APIConfig struct {
	Scheduler *Scheduler
	// Version is the build-info string served by /healthz and /version.
	Version string
	// RequestTimeout bounds each non-streaming request's context
	// (default 30s). The SSE endpoint is exempt: it lives until the
	// client hangs up or the server drains.
	RequestTimeout time.Duration
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// Cluster is the node's cluster identity (nil = standalone). It gates
	// the /v1/cluster surface: the status endpoint always answers, the
	// scan/shard/ping endpoints answer 409 wrong_role unless the node
	// plays the required role.
	Cluster *cluster.Node
	// DisableResponseCache turns off the /v1 response cache and the
	// ETag/If-None-Match machinery that rides on it (leaksd
	// -respcache=false; benchmarks use it to measure cold renders). Every
	// GET then renders fresh — correct, just not allocation-free.
	DisableResponseCache bool
	// Now is the wall clock (default time.Now).
	Now func() time.Time
}

type api struct {
	cfg      APIConfig
	sched    *Scheduler
	start    time.Time
	policies *policyManager

	mux *http.ServeMux
	// endpoints maps URL paths to the zero-alloc cached serving path;
	// ServeHTTP consults it before the mux for GET/HEAD requests.
	endpoints map[string]*cachedEndpoint
	// providers is the known-provider set, built once: ProviderByName
	// allocates the profile slice per call, which the hot path cannot.
	providers map[string]struct{}
	// runtimes is the known runtime-target set, same reasoning.
	runtimes map[string]struct{}
}

// NewHandler builds the leaksd HTTP API. The current surface lives under
// the versioned /v1 prefix:
//
//	POST /v1/scans        submit a scan (202 queued, 200 cache hit)
//	GET  /v1/scans        list jobs (?limit=&offset=&provider=&verdict=)
//	GET  /v1/scans/{id}   one job with its result
//	GET  /v1/results      latest verdicts per provider (?limit=&offset=&provider=&runtime=&verdict=)
//	GET  /v1/matrix       latest runtime-aware availability matrix (?limit=&offset=&provider=&runtime=&verdict=)
//	GET  /v1/channels     the Table I channel registry
//	GET  /v1/providers    inspectable provider profiles
//	GET  /v1/runtimes     inspectable container-runtime targets
//	GET  /v1/engine       incremental-engine cache and epoch statistics
//	GET  /v1/events       SSE stream of verdict / scan / policy events
//	POST /v1/policies     synthesize (or store) a mask policy (201)
//	GET  /v1/policies     list policy records
//	GET  /v1/policies/{id}    one policy with report and latest rollout
//	DELETE /v1/policies/{id}  remove a policy (204)
//	POST /v1/policies/{id}/rollout  staged canary rollout (200 terminal status)
//	GET  /v1/policies/{id}/rollout  latest rollout status
//	GET  /v1/cluster      cluster role/status envelope (all roles)
//	POST /v1/cluster/scans   partitioned fleet scan (coordinator role)
//	POST /v1/cluster/shards  execute one shard (worker role)
//	GET  /v1/cluster/ping    liveness probe (worker role)
//	GET  /v1/metrics      Prometheus text exposition
//	GET  /v1/healthz      liveness + uptime
//	GET  /v1/version      build info
//
// Every /v1 error response carries the structured envelope
// {"error":{"code":"...","message":"..."}}.
//
// The /v1 read endpoints (scans, results, matrix, channels, providers,
// runtimes, engine, version) serve through an epoch-keyed response cache: bodies are
// rendered once per (canonical query, epoch) and replayed with zero heap
// allocations until the backing state mutates, and every 200 carries a
// strong ETag derived from the epoch snapshot so If-None-Match
// revalidation answers 304 for free. docs/SERVING.md documents the
// contract.
//
// The pre-versioning routes (POST /scans, GET /scans, /scans/{id},
// /results, /channels, /providers, /events, /metrics, /healthz, /version)
// remain as byte-identical thin aliases: same payloads, same legacy
// {"error":"..."} failure shape, no pagination. They answer with a
// `Deprecation` header and a `Link: </v1/...>; rel="successor-version"`
// pointer; see ARCHITECTURE.md for the deprecation policy.
//
// The handler is exactly what cmd/leaksd serves; tests drive it through
// net/http/httptest.
func NewHandler(cfg APIConfig) http.Handler {
	if cfg.Scheduler == nil {
		panic("service: APIConfig.Scheduler is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	a := &api{cfg: cfg, sched: cfg.Scheduler, start: cfg.Now(), policies: newPolicyManager()}

	a.providers = make(map[string]struct{})
	for _, name := range ProviderNames() {
		a.providers[name] = struct{}{}
	}
	a.runtimes = make(map[string]struct{})
	for _, name := range RuntimeNames() {
		a.runtimes[name] = struct{}{}
	}
	s := cfg.Scheduler
	a.endpoints = map[string]*cachedEndpoint{
		"/v1/scans": a.newCachedEndpoint("scans", true,
			func() (uint64, bool) { return s.JobsEpoch(), true }, a.renderScans),
		"/v1/results": a.newCachedEndpoint("results", true,
			func() (uint64, bool) { return s.ResultsEpoch(), true }, a.renderResults),
		"/v1/matrix": a.newCachedEndpoint("matrix", true,
			func() (uint64, bool) { return s.ResultsEpoch(), true }, a.renderMatrix),
		"/v1/channels":  a.newCachedEndpoint("channels", false, staticEpoch, a.renderChannels),
		"/v1/providers": a.newCachedEndpoint("providers", false, staticEpoch, a.renderProviders),
		"/v1/runtimes":  a.newCachedEndpoint("runtimes", false, staticEpoch, a.renderRuntimes),
		"/v1/engine": a.newCachedEndpoint("engine", false,
			func() (uint64, bool) { return s.EngineEpoch(), s.RunningScans() == 0 }, a.renderEngine),
		"/v1/version": a.newCachedEndpoint("version", false, staticEpoch, a.renderVersion),
	}

	mux := http.NewServeMux()
	a.mux = mux

	// Versioned surface: structured error envelope, pagination, filters,
	// and (on the read endpoints) the epoch-keyed response cache. Cached
	// GETs short-circuit in ServeHTTP; their mux registrations exist so
	// other methods keep 405 semantics.
	mux.HandleFunc("POST /v1/scans", a.timed(a.postScanV1))
	mux.HandleFunc("GET /v1/scans", a.cachedHandler("/v1/scans"))
	mux.HandleFunc("GET /v1/scans/{id}", a.timed(a.getScanV1))
	mux.HandleFunc("GET /v1/results", a.cachedHandler("/v1/results"))
	mux.HandleFunc("GET /v1/matrix", a.cachedHandler("/v1/matrix"))
	mux.HandleFunc("GET /v1/channels", a.cachedHandler("/v1/channels"))
	mux.HandleFunc("GET /v1/providers", a.cachedHandler("/v1/providers"))
	mux.HandleFunc("GET /v1/runtimes", a.cachedHandler("/v1/runtimes"))
	mux.HandleFunc("GET /v1/engine", a.cachedHandler("/v1/engine"))
	mux.HandleFunc("GET /v1/events", a.events) // untimed: streams
	mux.HandleFunc("POST /v1/policies", a.timed(a.postPoliciesV1))
	mux.HandleFunc("GET /v1/policies", a.timed(a.getPoliciesV1))
	mux.HandleFunc("GET /v1/policies/{id}", a.timed(a.getPolicyV1))
	mux.HandleFunc("DELETE /v1/policies/{id}", a.timed(a.deletePolicyV1))
	mux.HandleFunc("POST /v1/policies/{id}/rollout", a.timed(a.postPolicyRolloutV1))
	mux.HandleFunc("GET /v1/policies/{id}/rollout", a.timed(a.getPolicyRolloutV1))
	mux.HandleFunc("GET /v1/cluster", a.timed(a.getClusterV1))
	mux.HandleFunc("POST /v1/cluster/scans", a.timed(a.postClusterScanV1))
	mux.HandleFunc("POST /v1/cluster/shards", a.timed(a.postClusterShardV1))
	mux.HandleFunc("GET /v1/cluster/ping", a.timed(a.getClusterPingV1))
	mux.HandleFunc("GET /v1/metrics", a.metrics)
	mux.HandleFunc("GET /v1/healthz", a.timed(a.healthz))
	mux.HandleFunc("GET /v1/version", a.cachedHandler("/v1/version"))

	// Legacy aliases: byte-identical pre-/v1 behaviour plus deprecation
	// headers. Handlers that never grew /v1-only behaviour are shared.
	mux.HandleFunc("POST /scans", a.deprecated("/v1/scans", a.timed(a.postScanLegacy)))
	mux.HandleFunc("GET /scans", a.deprecated("/v1/scans", a.timed(a.listScansLegacy)))
	mux.HandleFunc("GET /scans/{id}", a.deprecated("/v1/scans/{id}", a.timed(a.getScanLegacy)))
	mux.HandleFunc("GET /results", a.deprecated("/v1/results", a.timed(a.getResultsLegacy)))
	mux.HandleFunc("GET /channels", a.deprecated("/v1/channels", a.timed(a.getChannels)))
	mux.HandleFunc("GET /providers", a.deprecated("/v1/providers", a.timed(a.getProviders)))
	mux.HandleFunc("GET /events", a.deprecated("/v1/events", a.events))
	mux.HandleFunc("GET /metrics", a.deprecated("/v1/metrics", a.metrics))
	mux.HandleFunc("GET /healthz", a.deprecated("/v1/healthz", a.timed(a.healthz)))
	mux.HandleFunc("GET /version", a.deprecated("/v1/version", a.timed(a.version)))
	return a
}

// timed wraps a handler with the request-scoped timeout.
func (a *api) timed(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), a.cfg.RequestTimeout)
		defer cancel()
		fn(w, r.WithContext(ctx))
	}
}

// deprecated marks a legacy route: the response carries a Deprecation
// header and a successor-version link so clients can discover the /v1
// replacement mechanically. Body bytes are untouched.
func (a *api) deprecated(successor string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		h.Set("Deprecation", "true")
		h.Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		fn(w, r)
	}
}

// apiError is the legacy (pre-/v1) error shape, kept byte-identical for
// old clients.
type apiError struct {
	Error string `json:"error"`
}

// Structured /v1 error codes.
const (
	codeBadRequest = "bad_request"
	codeNotFound   = "not_found"
	codeQueueFull  = "queue_full"
	codeDraining   = "draining"
	codeInternal   = "internal"
	// codeUnknownTarget marks a named scan target (runtime) that does not
	// exist. Unknown providers keep the historical not_found code so every
	// pre-runtime response stays byte-identical.
	codeUnknownTarget = "unknown_target"
)

// errorBody is the inner object of the /v1 error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the /v1 error shape: {"error":{"code","message"}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the legacy flat error shape.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeErrorV1 emits the structured /v1 envelope.
func writeErrorV1(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// errWriter abstracts the two error shapes so one handler body serves both
// API generations; the code argument is dropped by the legacy writer.
type errWriter func(w http.ResponseWriter, status int, code, format string, args ...any)

func legacyErr(w http.ResponseWriter, status int, _ string, format string, args ...any) {
	writeError(w, status, format, args...)
}

func (a *api) postScanLegacy(w http.ResponseWriter, r *http.Request) { a.postScan(w, r, legacyErr) }
func (a *api) postScanV1(w http.ResponseWriter, r *http.Request)     { a.postScan(w, r, writeErrorV1) }

func (a *api) postScan(w http.ResponseWriter, r *http.Request, fail errWriter) {
	var req ScanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	job, err := a.sched.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest):
		fail(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	case errors.Is(err, ErrUnknownTarget):
		fail(w, http.StatusNotFound, codeUnknownTarget, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		fail(w, http.StatusTooManyRequests, codeQueueFull, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		fail(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
		return
	default:
		fail(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	code := http.StatusAccepted
	if job.CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

func (a *api) listScansLegacy(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scans []Job `json:"scans"`
	}{Scans: a.sched.Jobs()})
}

// jobHasVerdict reports whether any verdict cell of the job's result
// carries the given availability glyph.
func jobHasVerdict(j Job, verdict string) bool {
	if j.Result == nil {
		return false
	}
	for _, v := range j.Result.Verdicts {
		if v.Availability == verdict {
			return true
		}
	}
	return false
}

func (a *api) getScanLegacy(w http.ResponseWriter, r *http.Request) { a.getScan(w, r, legacyErr) }
func (a *api) getScanV1(w http.ResponseWriter, r *http.Request)     { a.getScan(w, r, writeErrorV1) }

func (a *api) getScan(w http.ResponseWriter, r *http.Request, fail errWriter) {
	id := r.PathValue("id")
	job, ok := a.sched.JobByID(id)
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, "no such scan %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (a *api) getResultsLegacy(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider != "" {
		if _, ok := ProviderByName(provider); !ok {
			writeError(w, http.StatusNotFound, "unknown provider %q (one of %v)", provider, ProviderNames())
			return
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []ProviderVerdicts `json:"results"`
	}{Results: a.sched.Results(provider)})
}

func (a *api) getChannels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Channels []ChannelInfo `json:"channels"`
	}{Channels: Channels()})
}

func (a *api) getProviders(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Providers []string `json:"providers"`
	}{Providers: ProviderNames()})
}

func (a *api) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.sched.Metrics().Registry.WritePrometheus(w)
}

func (a *api) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Draining      bool    `json:"draining"`
	}{
		Status:        "ok",
		Version:       a.cfg.Version,
		UptimeSeconds: a.cfg.Now().Sub(a.start).Seconds(),
		Draining:      a.sched.draining.Load(),
	})
}

func (a *api) version(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Version string `json:"version"`
	}{Version: a.cfg.Version})
}

// events serves the SSE stream: every hub event as an `event:`/`data:`
// frame, with periodic comment heartbeats so idle connections stay alive
// through proxies. The stream ends when the client disconnects or the
// scheduler's hub closes the subscription (drain).
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := a.sched.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": leaksd event stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(a.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		}
	}
}
