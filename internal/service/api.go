package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// APIConfig wires the HTTP layer. Scheduler is required; everything else
// has defaults.
type APIConfig struct {
	Scheduler *Scheduler
	// Version is the build-info string served by /healthz and /version.
	Version string
	// RequestTimeout bounds each non-streaming request's context
	// (default 30s). The SSE endpoint is exempt: it lives until the
	// client hangs up or the server drains.
	RequestTimeout time.Duration
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// Now is the wall clock (default time.Now).
	Now func() time.Time
}

type api struct {
	cfg   APIConfig
	sched *Scheduler
	start time.Time
}

// NewHandler builds the leaksd HTTP API:
//
//	POST /scans        submit a scan (202 queued, 200 cache hit)
//	GET  /scans        list jobs
//	GET  /scans/{id}   one job with its result
//	GET  /results      latest verdicts per provider (?provider= filters)
//	GET  /channels     the Table I channel registry
//	GET  /providers    inspectable provider profiles
//	GET  /events       SSE stream of verdict / scan events
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness + uptime
//	GET  /version      build info
//
// The handler is exactly what cmd/leaksd serves; tests drive it through
// net/http/httptest.
func NewHandler(cfg APIConfig) http.Handler {
	if cfg.Scheduler == nil {
		panic("service: APIConfig.Scheduler is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	a := &api{cfg: cfg, sched: cfg.Scheduler, start: cfg.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /scans", a.timed(a.postScan))
	mux.HandleFunc("GET /scans", a.timed(a.listScans))
	mux.HandleFunc("GET /scans/{id}", a.timed(a.getScan))
	mux.HandleFunc("GET /results", a.timed(a.getResults))
	mux.HandleFunc("GET /channels", a.timed(a.getChannels))
	mux.HandleFunc("GET /providers", a.timed(a.getProviders))
	mux.HandleFunc("GET /events", a.events) // untimed: streams
	mux.HandleFunc("GET /metrics", a.metrics)
	mux.HandleFunc("GET /healthz", a.timed(a.healthz))
	mux.HandleFunc("GET /version", a.timed(a.version))
	return mux
}

// timed wraps a handler with the request-scoped timeout.
func (a *api) timed(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), a.cfg.RequestTimeout)
		defer cancel()
		fn(w, r.WithContext(ctx))
	}
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (a *api) postScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	job, err := a.sched.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if job.CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

func (a *api) listScans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scans []Job `json:"scans"`
	}{Scans: a.sched.Jobs()})
}

func (a *api) getScan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := a.sched.JobByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such scan %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (a *api) getResults(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider != "" {
		if _, ok := ProviderByName(provider); !ok {
			writeError(w, http.StatusNotFound, "unknown provider %q (one of %v)", provider, ProviderNames())
			return
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []ProviderVerdicts `json:"results"`
	}{Results: a.sched.Results(provider)})
}

func (a *api) getChannels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Channels []ChannelInfo `json:"channels"`
	}{Channels: Channels()})
}

func (a *api) getProviders(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Providers []string `json:"providers"`
	}{Providers: ProviderNames()})
}

func (a *api) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.sched.Metrics().Registry.WritePrometheus(w)
}

func (a *api) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Draining      bool    `json:"draining"`
	}{
		Status:        "ok",
		Version:       a.cfg.Version,
		UptimeSeconds: a.cfg.Now().Sub(a.start).Seconds(),
		Draining:      a.sched.draining.Load(),
	})
}

func (a *api) version(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Version string `json:"version"`
	}{Version: a.cfg.Version})
}

// events serves the SSE stream: every hub event as an `event:`/`data:`
// frame, with periodic comment heartbeats so idle connections stay alive
// through proxies. The stream ends when the client disconnects or the
// scheduler's hub closes the subscription (drain).
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := a.sched.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": leaksd event stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(a.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		}
	}
}
