package service

import "sync"

// Event is one item on the service's event stream. Scan lifecycle events
// (EventScanDone / EventScanFailed) fire once per job; verdict events fire
// once per (provider, channel) cell of an inspection result, with Changed
// marking the cells whose availability differs from the last time this
// service instance observed that cell — the "verdict changes as they land"
// signal an operator dashboard tails over SSE.
type Event struct {
	Type  string `json:"type"`
	JobID string `json:"job_id,omitempty"`
	Kind  Kind   `json:"kind,omitempty"`

	// Provider tags verdict, scan lifecycle, and policy events alike, so a
	// consumer can filter one provider's stream without re-fetching
	// /v1/results.
	Provider string `json:"provider,omitempty"`

	// Verdict events only.
	Channel      string `json:"channel,omitempty"`
	Availability string `json:"availability,omitempty"`
	Changed      bool   `json:"changed,omitempty"`
	// Previous availability for changed verdicts ("" on first observation).
	Previous string `json:"previous,omitempty"`

	// Epoch is the engine epoch the event was observed at: the scheduler's
	// engine serving epoch for scan verdicts, the rollout world's FS-wide
	// source epoch for policy verdicts. The canary watcher correlates
	// verdict flips with world changes through it.
	Epoch uint64 `json:"epoch,omitempty"`

	// Scan lifecycle events only.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`

	// Policy rollout events only: the policy ID, its rollout phase, and —
	// for rollbacks — the reason.
	Policy string `json:"policy,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Event types.
const (
	EventVerdict    = "verdict"
	EventScanDone   = "scan_done"
	EventScanFailed = "scan_failed"
	EventPolicy     = "policy"
)

// hub fans events out to subscribers. Delivery is best-effort per
// subscriber: a subscriber that stops draining its channel loses events
// (counted by the scheduler's dropped-events metric) rather than blocking
// scan completion — the result store, not the event stream, is the source
// of truth.
type hub struct {
	mu   sync.Mutex
	subs map[int]chan Event
	next int
}

func newHub() *hub { return &hub{subs: make(map[int]chan Event)} }

// subscriberBuffer is sized for a full chaossweep worth of verdict events
// (6 providers × 21 channels × 5 rates ≈ 630) so a briefly-stalled reader
// does not shed load.
const subscriberBuffer = 1024

// Subscribe registers a new subscriber; the returned cancel must be called
// exactly once, after which the channel is closed.
func (h *hub) Subscribe() (<-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	ch := make(chan Event, subscriberBuffer)
	h.subs[id] = ch
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
	}
}

// Publish delivers ev to every subscriber, returning how many deliveries
// were dropped because a subscriber's buffer was full.
func (h *hub) Publish(ev Event) (dropped int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			dropped++
		}
	}
	return dropped
}

// CloseAll terminates every subscription (service drain): each channel is
// closed after any buffered events, so an SSE handler drains what it has
// and returns, unblocking the HTTP server's own graceful shutdown.
func (h *hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// Subscribers reports the current subscriber count.
func (h *hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
