package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states. Queued → Running → (Done | Failed | Canceled);
// cache hits are born Done.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Job is one scheduled scan. The scheduler hands out value snapshots;
// Result is immutable once set, so sharing the pointer across snapshots
// is safe.
type Job struct {
	ID string `json:"id"`
	// Name tags jobs submitted by a recurring schedule ("" for ad hoc).
	Name    string      `json:"name,omitempty"`
	Request ScanRequest `json:"request"`
	Status  JobStatus   `json:"status"`
	// CacheHit marks jobs served from the result store without compute.
	CacheHit    bool        `json:"cache_hit"`
	Attempts    int         `json:"attempts"`
	Error       string      `json:"error,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   time.Time   `json:"started_at,omitzero"`
	FinishedAt  time.Time   `json:"finished_at,omitzero"`
	Result      *ScanResult `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	return j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled
}

// ProviderVerdicts is the latest verdict set for one provider — what
// GET /results serves.
type ProviderVerdicts struct {
	Provider  string    `json:"provider"`
	JobID     string    `json:"job_id"`
	UpdatedAt time.Time `json:"updated_at"`
	Verdicts  []Verdict `json:"verdicts"`
}

// Config tunes the scheduler. Zero values select production defaults.
type Config struct {
	// QueueCap bounds the job queue; submissions beyond it are rejected
	// with ErrQueueFull (backpressure beats unbounded memory). Default 64.
	QueueCap int
	// Workers is the number of concurrent scan executors. Each scan fans
	// out internally via internal/parallel, so a small number of heavy
	// jobs saturates the host; default 2.
	Workers int
	// JobTimeout is the per-job deadline (covers all of one attempt's
	// compute). Default 5m.
	JobTimeout time.Duration
	// MaxAttempts bounds execution attempts per job (1 = no retries).
	// Default 3.
	MaxAttempts int
	// RetryBackoff is the first retry's delay; each further retry doubles
	// it. Default 50ms.
	RetryBackoff time.Duration
	// RetryBudget is the deadline-aware cap on one job's cumulative
	// retry time, measured from its first attempt: once the budget has
	// elapsed no further attempt starts, and the job terminates with a
	// terminal failed status citing the budget. It closes the latent gap
	// where a permanently failing job with a long backoff ladder could
	// keep burning attempts long past any useful deadline. Default
	// MaxAttempts×JobTimeout — wide enough to never cut short a ladder
	// the attempt bound alone would have allowed.
	RetryBudget time.Duration
	// StoreCap / StoreTTL size the result store. Defaults 128 / 15m.
	StoreCap int
	StoreTTL time.Duration
	// SessionCap bounds the engine-backed session pool (the persistent
	// simulated worlds recurring chaos-free scans reuse across ticks);
	// least-recently-used sessions are evicted beyond it. Default 16.
	SessionCap int
	// Now is the wall clock (tests inject a fake). Default time.Now.
	Now func() time.Time
	// Sleep waits between retries, honouring ctx. Default timer sleep;
	// tests inject an instant one.
	Sleep func(context.Context, time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = time.Duration(c.MaxAttempts) * c.JobTimeout
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = ctxSleep
	}
	return c
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submission failure sentinels (the HTTP layer maps them to 429/503/400,
// and ErrUnknownTarget to 404 unknown_target).
var (
	ErrQueueFull  = errors.New("service: scan queue full")
	ErrDraining   = errors.New("service: scheduler is draining")
	ErrBadRequest = errors.New("service: invalid scan request")
	// ErrUnknownTarget marks a request naming a scan target (runtime) that
	// does not exist — a 404-class failure, distinct from a malformed body.
	ErrUnknownTarget = errors.New("service: unknown scan target")
)

// Scheduler owns the job queue, the worker pool, the result store, the
// verdict tracker, and the event hub.
type Scheduler struct {
	cfg    Config
	store  *Store
	met    *Metrics
	hub    *hub
	pool   *sessionPool
	runner func(context.Context, ScanRequest) (*ScanResult, error) // nil = runScan

	ctx    context.Context
	cancel context.CancelFunc

	mu                    sync.Mutex
	jobs                  map[string]*Job
	order                 []string
	seq                   int
	lastAvail             map[string]string // provider\x00channel → availability
	latest                map[string]*ProviderVerdicts
	lastEvict, lastExpire uint64

	// qmu serializes queue sends against Shutdown's close(queue): a
	// submission that passed the draining check must either land before
	// the close or observe draining under this lock — never send on a
	// closed channel.
	qmu      sync.Mutex
	queue    chan *Job
	wg       sync.WaitGroup
	recWG    sync.WaitGroup
	recStop  chan struct{}
	draining atomic.Bool
	started  atomic.Bool

	// Serving epochs back the /v1 response cache (internal/service/respcache):
	// each counts the mutations that can change one read endpoint's bytes, and
	// every bump happens inside the same critical section as the mutation it
	// reports, so a render that reads the epoch first and the data second can
	// never cache new bytes under an old epoch.
	//
	//   jobsEpoch    any Job field mutation (GET /v1/scans)
	//   resultsEpoch a latest-verdict update (GET /v1/results)
	//   engineEpoch  a real scan touched the session pool (GET /v1/engine)
	//
	// running counts scans currently executing; /v1/engine is only cacheable
	// at quiescence (running == 0), because a mid-scan pool snapshot changes
	// without an epoch bump.
	jobsEpoch    atomic.Uint64
	resultsEpoch atomic.Uint64
	engineEpoch  atomic.Uint64
	running      atomic.Int64
}

// New builds a scheduler (not yet running; call Start). met == nil
// registers metrics on a fresh registry.
func New(cfg Config, met *Metrics) *Scheduler {
	cfg = cfg.withDefaults()
	if met == nil {
		met = NewMetrics(nil)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		cfg:       cfg,
		store:     NewStore(cfg.StoreCap, cfg.StoreTTL, cfg.Now),
		met:       met,
		hub:       newHub(),
		pool:      newSessionPool(cfg.SessionCap),
		ctx:       ctx,
		cancel:    cancel,
		jobs:      make(map[string]*Job),
		lastAvail: make(map[string]string),
		latest:    make(map[string]*ProviderVerdicts),
		queue:     make(chan *Job, cfg.QueueCap),
		recStop:   make(chan struct{}),
	}
}

// Metrics exposes the scheduler's registry (for the /metrics handler).
func (s *Scheduler) Metrics() *Metrics { return s.met }

// Start launches the worker pool. Idempotent.
func (s *Scheduler) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.met.QueueDepth.With().Set(float64(len(s.queue)))
				s.runJob(job)
			}
		}()
	}
}

// Submit enqueues a scan (or serves it from the result store). The
// returned Job is a snapshot; poll JobByID for progress.
func (s *Scheduler) Submit(req ScanRequest) (Job, error) { return s.submit(req, "") }

func (s *Scheduler) submit(req ScanRequest, name string) (Job, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		if errors.Is(err, ErrUnknownTarget) {
			return Job{}, err
		}
		return Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if s.draining.Load() {
		s.met.QueueRejects.With("draining").Inc()
		return Job{}, ErrDraining
	}

	key := req.Key()
	if res, ok := s.store.Get(key); ok {
		s.met.CacheHits.With().Inc()
		job := s.newJob(req, name)
		now := s.cfg.Now()
		s.mu.Lock()
		job.Status = StatusDone
		job.CacheHit = true
		job.Result = res
		job.StartedAt = now
		job.FinishedAt = now
		snap := *job
		s.jobsEpoch.Add(1)
		s.mu.Unlock()
		s.met.ScansTotal.With(string(req.Kind), string(StatusDone)).Inc()
		s.publish(Event{Type: EventScanDone, JobID: job.ID, Kind: req.Kind,
			Provider: req.Provider, Epoch: s.engineEpoch.Load(), CacheHit: true})
		return snap, nil
	}
	s.met.CacheMisses.With().Inc()

	job := s.newJob(req, name)
	s.qmu.Lock()
	if s.draining.Load() {
		// Shutdown began between the fast-path check and here; the queue
		// may already be closed.
		s.qmu.Unlock()
		s.met.QueueRejects.With("draining").Inc()
		s.failJob(job, ErrDraining)
		return Job{}, ErrDraining
	}
	select {
	case s.queue <- job:
		s.qmu.Unlock()
		s.met.QueueDepth.With().Set(float64(len(s.queue)))
		return s.snapshot(job.ID), nil
	default:
		s.qmu.Unlock()
		s.met.QueueRejects.With("full").Inc()
		s.failJob(job, ErrQueueFull)
		return Job{}, ErrQueueFull
	}
}

// failJob marks a never-enqueued job failed with err.
func (s *Scheduler) failJob(job *Job, err error) {
	s.mu.Lock()
	job.Status = StatusFailed
	job.Error = err.Error()
	job.FinishedAt = s.cfg.Now()
	s.jobsEpoch.Add(1)
	s.mu.Unlock()
}

// newJob allocates and records a queued job.
func (s *Scheduler) newJob(req ScanRequest, name string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("scan-%06d", s.seq),
		Name:        name,
		Request:     req,
		Status:      StatusQueued,
		SubmittedAt: s.cfg.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.jobsEpoch.Add(1)
	return job
}

// runJob executes one job with retry/backoff under the per-job deadline.
func (s *Scheduler) runJob(job *Job) {
	if s.ctx.Err() != nil {
		// Forced shutdown already fired: surface the queued job as
		// canceled rather than silently dropping it.
		s.finish(job, nil, s.ctx.Err())
		return
	}
	s.mu.Lock()
	job.Status = StatusRunning
	job.StartedAt = s.cfg.Now()
	s.jobsEpoch.Add(1)
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	s.met.Inflight.With().Add(1)
	defer s.met.Inflight.With().Add(-1)

	var (
		res *ScanResult
		err error
	)
	deadline := s.cfg.Now().Add(s.cfg.RetryBudget)
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			if s.cfg.Now().After(deadline) {
				err = fmt.Errorf("service: retry budget %v exhausted after %d attempts: %w",
					s.cfg.RetryBudget, attempt-1, err)
				break
			}
			s.met.Retries.With(string(job.Request.Kind)).Inc()
			// Exponential backoff: base, 2·base, 4·base, …
			if serr := s.cfg.Sleep(s.ctx, s.cfg.RetryBackoff<<(attempt-2)); serr != nil {
				err = serr
				break
			}
		}
		s.mu.Lock()
		job.Attempts = attempt
		s.jobsEpoch.Add(1)
		s.mu.Unlock()

		jctx, cancel := context.WithTimeout(s.ctx, s.cfg.JobTimeout)
		start := s.cfg.Now()
		res, err = s.run(jctx, job.Request)
		cancel()
		if err == nil {
			s.met.ScanSeconds.With(string(job.Request.Kind)).Observe(s.cfg.Now().Sub(start).Seconds())
			break
		}
		if s.ctx.Err() != nil {
			break // shutting down: do not burn retries on a dead world
		}
	}
	s.finish(job, res, err)
}

// run is the execution hook: nil runner selects the real scan path,
// routed through the engine-backed session pool so recurring chaos-free
// scans reuse incremental state across ticks.
func (s *Scheduler) run(ctx context.Context, req ScanRequest) (*ScanResult, error) {
	if s.runner != nil {
		return s.runner(ctx, req)
	}
	res, err := runScanWith(ctx, req, s.pool)
	s.syncEngineMetrics()
	s.engineEpoch.Add(1)
	return res, err
}

// JobsEpoch counts Job mutations — the /v1/scans serving epoch.
func (s *Scheduler) JobsEpoch() uint64 { return s.jobsEpoch.Load() }

// ResultsEpoch counts latest-verdict updates — the /v1/results serving
// epoch.
func (s *Scheduler) ResultsEpoch() uint64 { return s.resultsEpoch.Load() }

// EngineEpoch counts session-pool generations — the /v1/engine serving
// epoch. Only meaningful at quiescence; see RunningScans.
func (s *Scheduler) EngineEpoch() uint64 { return s.engineEpoch.Load() }

// RunningScans reports how many scans are executing right now. While it is
// non-zero the session pool mutates without epoch bumps, so /v1/engine
// bypasses its response cache.
func (s *Scheduler) RunningScans() int64 { return s.running.Load() }

// EngineInfo snapshots the session pool and the aggregate incremental
// engine counters — what GET /v1/engine serves.
func (s *Scheduler) EngineInfo() EngineInfo { return s.pool.info() }

// syncEngineMetrics mirrors the aggregate engine counters into the
// telemetry registry after each executed scan.
func (s *Scheduler) syncEngineMetrics() {
	info := s.pool.info()
	s.met.EngineSessions.With().Set(float64(info.Sessions))
	s.met.EngineSessionHits.With().Set(float64(info.SessionHits))
	s.met.EngineSessionMisses.With().Set(float64(info.SessionMisses))
	s.met.EngineFindingHits.With().Set(float64(info.Stats.FindingHits))
	s.met.EngineFindingMisses.With().Set(float64(info.Stats.FindingMisses))
	s.met.EngineHostRenders.With().Set(float64(info.Stats.HostRenders))
	s.met.EngineHostHits.With().Set(float64(info.Stats.HostHits))
	s.met.EngineSnapshotRestores.With().Set(float64(info.SnapshotRestores))
}

// SetRunner replaces the scan executor (tests inject fast fakes; must be
// called before Start).
func (s *Scheduler) SetRunner(fn func(context.Context, ScanRequest) (*ScanResult, error)) {
	s.runner = fn
}

// finish records a job's terminal state, stores/publishes results, and
// emits events.
func (s *Scheduler) finish(job *Job, res *ScanResult, err error) {
	now := s.cfg.Now()
	if err != nil {
		status := StatusFailed
		if errors.Is(err, context.Canceled) && s.ctx.Err() != nil {
			status = StatusCanceled
		}
		s.mu.Lock()
		job.Status = status
		job.Error = err.Error()
		job.FinishedAt = now
		s.jobsEpoch.Add(1)
		s.mu.Unlock()
		s.met.ScansTotal.With(string(job.Request.Kind), string(status)).Inc()
		s.publish(Event{Type: EventScanFailed, JobID: job.ID, Kind: job.Request.Kind,
			Provider: job.Request.Provider, Epoch: s.engineEpoch.Load(), Error: err.Error()})
		return
	}

	res.CompletedAt = now
	s.store.Put(job.Request.Key(), res)
	s.syncStoreMetrics()

	// Verdict tracking: count every cell, flag the ones that moved, and
	// emit verdict events before the completion event so a subscriber that
	// sees scan_done has already seen the verdicts.
	s.mu.Lock()
	engineEpoch := s.engineEpoch.Load()
	events := make([]Event, 0, len(res.Verdicts)+1)
	byProvider := make(map[string][]Verdict)
	for _, v := range res.Verdicts {
		s.met.Verdicts.With(v.Channel, v.Availability).Inc()
		k := v.Provider + "\x00" + v.Channel
		prev, seen := s.lastAvail[k]
		changed := !seen || prev != v.Availability
		if seen && prev != v.Availability {
			s.met.VerdictChanges.With(v.Provider).Inc()
		}
		s.lastAvail[k] = v.Availability
		events = append(events, Event{
			Type: EventVerdict, JobID: job.ID, Kind: job.Request.Kind,
			Provider: v.Provider, Channel: v.Channel,
			Availability: v.Availability, Changed: changed, Previous: prev,
			Epoch: engineEpoch,
		})
		byProvider[v.Provider] = append(byProvider[v.Provider], v)
	}
	for provider, vs := range byProvider {
		s.latest[provider] = &ProviderVerdicts{
			Provider: provider, JobID: job.ID, UpdatedAt: now, Verdicts: vs,
		}
	}
	job.Status = StatusDone
	job.Result = res
	job.FinishedAt = now
	s.jobsEpoch.Add(1)
	s.resultsEpoch.Add(1)
	s.mu.Unlock()

	s.met.ScansTotal.With(string(job.Request.Kind), string(StatusDone)).Inc()
	for _, ev := range events {
		s.publish(ev)
	}
	s.publish(Event{Type: EventScanDone, JobID: job.ID, Kind: job.Request.Kind,
		Provider: job.Request.Provider, Epoch: engineEpoch})
}

// syncStoreMetrics folds the store's cumulative counters into the
// telemetry registry (counters only move forward, so deltas are safe).
func (s *Scheduler) syncStoreMetrics() {
	_, _, evict, expire := s.store.Stats()
	s.mu.Lock()
	dEvict, dExpire := evict-s.lastEvict, expire-s.lastExpire
	s.lastEvict, s.lastExpire = evict, expire
	s.mu.Unlock()
	if dEvict > 0 {
		s.met.StoreEvictions.With().Add(float64(dEvict))
	}
	if dExpire > 0 {
		s.met.StoreExpirations.With().Add(float64(dExpire))
	}
	s.met.StoreEntries.With().Set(float64(s.store.Len()))
}

func (s *Scheduler) publish(ev Event) {
	if dropped := s.hub.Publish(ev); dropped > 0 {
		s.met.EventsDropped.With().Add(float64(dropped))
	}
}

// Subscribe attaches an event-stream subscriber (see hub.Subscribe).
func (s *Scheduler) Subscribe() (<-chan Event, func()) { return s.hub.Subscribe() }

// JobByID returns a snapshot of one job.
func (s *Scheduler) JobByID(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// Jobs returns snapshots of every job in submission order.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

func (s *Scheduler) snapshot(id string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s.jobs[id]
}

// Results returns the latest verdicts per provider (all providers when
// provider == "", sorted by name for deterministic rendering).
func (s *Scheduler) Results(provider string) []ProviderVerdicts {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ProviderVerdicts
	for name, pv := range s.latest {
		if provider != "" && name != provider {
			continue
		}
		out = append(out, *pv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// Every registers a recurring named job: req is submitted every interval
// until the returned stop function is called or the scheduler shuts down.
// Submission failures (full queue, drain) are counted and skipped — the
// next tick tries again.
func (s *Scheduler) Every(name string, interval time.Duration, req ScanRequest) (func(), error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("%w: non-positive interval %v", ErrBadRequest, interval)
	}
	stop := make(chan struct{})
	var once sync.Once
	s.recWG.Add(1)
	go func() {
		defer s.recWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.recStop:
				return
			case <-stop:
				return
			case <-t.C:
				_, _ = s.submit(req, name)
			}
		}
	}()
	return func() { once.Do(func() { close(stop) }) }, nil
}

// Shutdown drains the scheduler: no new submissions are accepted, queued
// and in-flight jobs run to completion (their results land in the store
// and on the event stream), and recurring schedules stop. If ctx expires
// first, the root context is cancelled — in-flight scans abort at their
// next dispatch point (parallel.MapCtx) and are marked canceled — and
// Shutdown returns ctx.Err(). Idempotent.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.recStop)
	s.recWG.Wait()
	s.qmu.Lock()
	close(s.queue)
	s.qmu.Unlock()
	if !s.started.Load() {
		s.cancel()
		s.hub.CloseAll()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		s.hub.CloseAll()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		s.hub.CloseAll()
		return ctx.Err()
	}
}
