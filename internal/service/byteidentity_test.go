package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
)

// TestAPITable1ByteIdenticalToCLI is the determinism half of the PR's
// acceptance contract: with identical seeds, the Table I render returned by
// the HTTP API is byte-identical to what `leakscan -table1` prints (the CLI
// appends one newline via Fprintln; the API returns the raw render).
func TestAPITable1ByteIdenticalToCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I compute in -short mode")
	}
	// What the CLI computes: experiments.Table1ChaosWorkers(spec, jobs),
	// printed with fmt.Fprintln.
	cli, err := experiments.Table1ChaosWorkers(chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("CLI-path Table I: %v", err)
	}
	want := cli.String()

	_, srv := newTestAPI(t, Config{Workers: 2}, nil) // nil runner = real runScan
	resp, job := postScanJSON(t, srv, `{"kind":"table1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d; want 202", resp.StatusCode)
	}
	done := pollScanDone(t, srv, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("scan = %s (%s); want done", done.Status, done.Error)
	}
	if done.Result.Rendered != want {
		t.Fatalf("API render differs from CLI render:\nAPI:\n%s\nCLI:\n%s", done.Result.Rendered, want)
	}
	// The structured verdicts cover all six Table I providers.
	providers := make(map[string]bool)
	for _, v := range done.Result.Verdicts {
		providers[v.Provider] = true
	}
	if len(providers) != 6 {
		t.Fatalf("verdict providers = %v; want the 6 Table I columns", providers)
	}

	// A different worker count dedups to the same cached bytes (HTTP 200).
	resp2, hit := postScanJSON(t, srv, `{"kind":"table1","workers":3}`)
	if resp2.StatusCode != http.StatusOK || !hit.CacheHit {
		t.Fatalf("worker-count variant: status %d hit %v; want cached 200", resp2.StatusCode, hit.CacheHit)
	}
	if hit.Result.Rendered != want {
		t.Fatal("cached render differs from CLI render")
	}
}

// TestAPIInspectSeedVariants checks that the datacenter seed threads through
// the API: the default seed reproduces the historical world, a different
// seed produces a different (but internally deterministic) render.
func TestAPIInspectSeedVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("inspection compute in -short mode")
	}
	_, srv := newTestAPI(t, Config{Workers: 2}, nil)

	submit := func(body string) Job {
		t.Helper()
		resp, job := postScanJSON(t, srv, body)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", body, resp.StatusCode)
		}
		if job.Terminal() {
			return job
		}
		return pollScanDone(t, srv, job.ID)
	}

	def := submit(`{"kind":"inspect","provider":"local"}`)
	if def.Status != StatusDone {
		t.Fatalf("default inspect = %s (%s)", def.Status, def.Error)
	}
	// Seed 0 and the explicit historical default are the same question.
	explicit := submit(`{"kind":"inspect","provider":"local","seed":7844}`) // 0x1ea4
	if explicit.Result.Rendered != def.Result.Rendered {
		t.Fatal("explicit default seed rendered differently from seed 0")
	}
	if !explicit.CacheHit {
		t.Error("explicit default seed missed the cache; Key() should canonicalize it")
	}

	other := submit(`{"kind":"inspect","provider":"local","seed":99}`)
	if other.Status != StatusDone {
		t.Fatalf("seed-99 inspect = %s (%s)", other.Status, other.Error)
	}
	if other.CacheHit {
		t.Error("distinct seed unexpectedly served from cache")
	}
	// Same seed again: cached, byte-identical.
	again := submit(`{"kind":"inspect","provider":"local","seed":99}`)
	if !again.CacheHit || again.Result.Rendered != other.Result.Rendered {
		t.Fatalf("repeat seed-99 inspect: hit=%v identical=%v", again.CacheHit, again.Result.Rendered == other.Result.Rendered)
	}
}

// TestAPIRequestTimeout verifies the non-streaming request deadline exists
// without relying on a slow handler: the deadline propagates through the
// request context.
func TestAPIRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, Sleep: instantSleep}, nil)
	s.SetRunner(func(_ context.Context, req ScanRequest) (*ScanResult, error) { return fakeResult(req), nil })
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	var sawDeadline bool
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	})
	// Wrap the probe with the same middleware the real routes use.
	a := &api{cfg: APIConfig{RequestTimeout: 100 * time.Millisecond}}
	srv := httptest.NewServer(a.timed(probe.ServeHTTP))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if !sawDeadline {
		t.Fatal("request context carried no deadline")
	}
}

// TestJobJSONShape pins the wire shape clients script against: zero-valued
// timestamps are omitted while queued, and the result embeds on completion.
func TestJobJSONShape(t *testing.T) {
	queued := Job{
		ID:          "scan-000001",
		Request:     ScanRequest{Kind: KindTable1},
		Status:      StatusQueued,
		SubmittedAt: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
	}
	raw, err := json.Marshal(queued)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(raw), "started_at") || strings.Contains(string(raw), "finished_at") {
		t.Fatalf("queued job leaks zero timestamps: %s", raw)
	}
	for _, want := range []string{`"id":"scan-000001"`, `"status":"queued"`, `"kind":"table1"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("job JSON %s lacks %s", raw, want)
		}
	}
}
