package service

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/texttable"
)

// runScan executes one scan request against the experiment layer,
// honouring ctx (per-job deadline plus service shutdown) and returning the
// structured result. The Rendered field is exactly what the corresponding
// CLI command prints for the same seeds — the byte-identity contract that
// lets operators diff API results against leakscan output.
func runScan(ctx context.Context, req ScanRequest) (*ScanResult, error) {
	return runScanWith(ctx, req, nil)
}

// runScanWith is runScan with an optional engine-backed session pool.
// Chaos-free table1/inspect/discovery requests route through pooled
// sessions when pool is non-nil, so a recurring scan's later ticks reuse
// the incremental engine (cache hits, zero re-renders) instead of
// rebuilding the world. The engine's byte-identity invariant — every pass
// equals a cold scan — keeps the Rendered output identical either way;
// chaos requests always take the one-shot path (their fault streams must
// start fresh every run).
func runScanWith(ctx context.Context, req ScanRequest, pool *sessionPool) (*ScanResult, error) {
	req = req.Normalize()
	spec := req.Chaos()
	pooled := pool != nil && req.ChaosRate == 0
	res := &ScanResult{Request: req}
	switch req.Kind {
	case KindTable1:
		var (
			t   *experiments.Table1Result
			err error
		)
		if pooled {
			t, err = pool.table1(ctx, req.Seed, req.Workers)
		} else {
			t, err = experiments.Table1Seeded(ctx, spec, req.Seed, req.Workers)
		}
		if err != nil {
			return nil, err
		}
		res.Rendered = t.String()
		res.Verdicts = verdictsOf(t.Inspections)
	case KindInspect:
		if req.Runtime != "" {
			return runRuntimeInspect(ctx, req, pool, res)
		}
		p, ok := ProviderByName(req.Provider)
		if !ok {
			return nil, fmt.Errorf("service: unknown provider %q", req.Provider)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			ins experiments.CloudInspection
			err error
		)
		if pooled {
			ins, err = pool.inspect(p, req.Seed, req.Workers)
		} else {
			ins, err = experiments.InspectProviderSeeded(p, spec, req.Seed)
		}
		if err != nil {
			return nil, err
		}
		res.Rendered = renderInspection(ins, req)
		res.Verdicts = verdictsOf([]experiments.CloudInspection{ins})
	case KindMatrix:
		var (
			m   *experiments.MatrixResult
			err error
		)
		if pooled {
			m, err = pool.matrix(ctx, req.Seed, req.Workers)
		} else {
			m, err = experiments.MatrixSweepSeeded(ctx, spec, req.Seed, req.Workers)
		}
		if err != nil {
			return nil, err
		}
		res.Rendered = m.String()
		res.Verdicts = verdictsOf(m.Inspections)
	case KindDiscovery:
		var (
			d   *experiments.DiscoveryResult
			err error
		)
		if pooled {
			if err = ctx.Err(); err != nil {
				return nil, err
			}
			d = pool.discovery(req.Seed, req.Workers)
		} else {
			d, err = experiments.DiscoverySeeded(ctx, spec, req.Seed, req.Workers)
		}
		if err != nil {
			return nil, err
		}
		res.Rendered = d.String()
	case KindFig3:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, err := experiments.Fig3Chaos(spec)
		if err != nil {
			return nil, err
		}
		res.Rendered = f.String()
	case KindFig8:
		f, err := experiments.Fig8Ctx(ctx, spec, req.Workers)
		if err != nil {
			return nil, err
		}
		res.Rendered = f.String()
	case KindChaosSweep:
		seed := req.ChaosSeed
		if seed == 0 {
			seed = 1 // the -chaosseed default; the sweep arms its own rates
		}
		s, err := experiments.ChaosSweepCtx(ctx, nil, seed, req.Workers)
		if err != nil {
			return nil, err
		}
		res.Rendered = s.String()
	default:
		return nil, fmt.Errorf("service: unknown kind %q", req.Kind)
	}
	return res, nil
}

// runRuntimeInspect executes a single-runtime inspection (KindInspect with
// Runtime set): the named runtime target rolled up over the matrix channel
// set, pooled like any other inspect target when chaos is off.
func runRuntimeInspect(ctx context.Context, req ScanRequest, pool *sessionPool, res *ScanResult) (*ScanResult, error) {
	p, ok := RuntimeByName(req.Runtime)
	if !ok {
		return nil, fmt.Errorf("service: unknown runtime %q", req.Runtime)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		ins experiments.CloudInspection
		err error
	)
	if pool != nil && req.ChaosRate == 0 {
		ins, err = pool.inspectChannels(p, req.Seed, req.Workers, core.MatrixChannels())
	} else {
		var s *experiments.InspectSession
		s, err = experiments.NewInspectSession(p, req.Chaos(), req.Seed)
		if err == nil {
			ins = s.InspectChannels(core.MatrixChannels(), req.Workers)
		}
	}
	if err != nil {
		return nil, err
	}
	res.Rendered = renderInspection(ins, req)
	res.Verdicts = verdictsOf([]experiments.CloudInspection{ins})
	return res, nil
}

// verdictsOf flattens inspections into (provider, channel, availability)
// cells, skipping failed providers (their error lives on the job, and a
// failed inspection is not a verdict).
func verdictsOf(ins []experiments.CloudInspection) []Verdict {
	var out []Verdict
	for _, in := range ins {
		if in.Err != nil {
			continue
		}
		for _, rep := range in.Reports {
			out = append(out, Verdict{
				Provider:     in.Provider,
				Channel:      rep.Channel.Name,
				Availability: rep.Availability.String(),
			})
		}
	}
	return out
}

// renderInspection prints a single-provider availability column — the
// service-only slice of Table I a per-provider recurring job produces.
func renderInspection(ins experiments.CloudInspection, req ScanRequest) string {
	tb := texttable.New("Leakage Channels", "Leakage Information", strings.ToUpper(ins.Provider))
	for _, rep := range ins.Reports {
		tb.Row(rep.Channel.Name, rep.Channel.Info, rep.Availability.String())
	}
	return fmt.Sprintf("INSPECTION: %s (%s)\n%s", ins.Provider, req.Chaos(), tb.String())
}

// ChannelInfo is the JSON shape of one registry channel for GET /channels.
type ChannelInfo struct {
	Name       string   `json:"name"`
	Paths      []string `json:"paths"`
	Info       string   `json:"info,omitempty"`
	CoRes      bool     `json:"co_residence"`
	DoS        bool     `json:"dos"`
	InfoLeak   bool     `json:"info_leak"`
	Uniqueness string   `json:"uniqueness"`
	Manipulate string   `json:"manipulate"`
}

// Channels exports the Table I registry in JSON-friendly form.
func Channels() []ChannelInfo {
	chs := core.TableIChannels()
	out := make([]ChannelInfo, len(chs))
	for i, ch := range chs {
		out[i] = ChannelInfo{
			Name:       ch.Name,
			Paths:      ch.Paths,
			Info:       ch.Info,
			CoRes:      ch.CoRes,
			DoS:        ch.DoS,
			InfoLeak:   ch.InfoLeak,
			Uniqueness: uniquenessName(ch.Uniqueness),
			Manipulate: manipulateName(ch.Manipulate),
		}
	}
	return out
}

func uniquenessName(u core.UClass) string {
	switch u {
	case core.UStatic:
		return "static"
	case core.UImplant:
		return "implant"
	case core.UDynamic:
		return "dynamic"
	default:
		return "none"
	}
}

func manipulateName(m core.MLevel) string {
	switch m {
	case core.MDirect:
		return "direct"
	case core.MIndirect:
		return "indirect"
	default:
		return "none"
	}
}
