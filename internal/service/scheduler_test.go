package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeResult builds a deterministic ScanResult for an injected runner.
func fakeResult(req ScanRequest) *ScanResult {
	return &ScanResult{
		Request:  req,
		Rendered: fmt.Sprintf("fake %s seed=%d", req.Kind, req.Seed),
		Verdicts: []Verdict{
			{Provider: "local", Channel: "ch-a", Availability: "●"},
			{Provider: "local", Channel: "ch-b", Availability: "○"},
		},
	}
}

// instantSleep makes retry backoff free while still honouring cancellation.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// newTestScheduler builds a started scheduler with an injected runner.
func newTestScheduler(t *testing.T, cfg Config, runner func(context.Context, ScanRequest) (*ScanResult, error)) *Scheduler {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = instantSleep
	}
	s := New(cfg, nil)
	s.SetRunner(runner)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// waitTerminal polls until the job reaches a final state.
func waitTerminal(t *testing.T, s *Scheduler, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if job, ok := s.JobByID(id); ok && job.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

func TestSchedulerRunsScanAndStoresResult(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})
	job, err := s.Submit(ScanRequest{Kind: KindTable1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.CacheHit {
		t.Fatal("first submission claimed a cache hit")
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("job = %+v; want done with result", done)
	}
	if done.Attempts != 1 {
		t.Fatalf("attempts = %d; want 1", done.Attempts)
	}
	if got := s.Results("local"); len(got) != 1 || len(got[0].Verdicts) != 2 {
		t.Fatalf("Results(local) = %+v; want one provider with two verdicts", got)
	}
}

func TestSchedulerCacheHitServesStoredResult(t *testing.T) {
	calls := 0
	s := newTestScheduler(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		calls++
		return fakeResult(req), nil
	})
	first, err := s.Submit(ScanRequest{Kind: KindTable1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitTerminal(t, s, first.ID)

	// Same question at a different worker count: must dedup to the cache.
	second, err := s.Submit(ScanRequest{Kind: KindTable1, Workers: 8})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !second.CacheHit || second.Status != StatusDone {
		t.Fatalf("resubmit = %+v; want immediate cache hit", second)
	}
	if second.Result.Rendered != done.Result.Rendered {
		t.Fatal("cache hit returned different bytes")
	}
	if calls != 1 {
		t.Fatalf("runner ran %d times; want 1", calls)
	}
	if v := s.Metrics().CacheHits.With().Value(); v != 1 {
		t.Fatalf("cache-hit counter = %g; want 1", v)
	}
}

func TestSchedulerRetryBackoffThenSuccess(t *testing.T) {
	var sleeps []time.Duration
	cfg := Config{
		Workers: 1, MaxAttempts: 3, RetryBackoff: 10 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return ctx.Err()
		},
	}
	calls := 0
	s := newTestScheduler(t, cfg, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		calls++
		if calls < 3 {
			return nil, fmt.Errorf("transient fault %d", calls)
		}
		return fakeResult(req), nil
	})
	job, err := s.Submit(ScanRequest{Kind: KindFig8})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("status = %s (err %q); want done after retries", done.Status, done.Error)
	}
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d; want 3", done.Attempts)
	}
	// Exponential backoff: base, then 2·base.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v; want %v", sleeps, want)
	}
	if v := s.Metrics().Retries.With(string(KindFig8)).Value(); v != 2 {
		t.Fatalf("retry counter = %g; want 2", v)
	}
}

func TestSchedulerRetriesExhaustedMarksFailed(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, MaxAttempts: 2}, func(context.Context, ScanRequest) (*ScanResult, error) {
		return nil, errors.New("permanent fault")
	})
	job, err := s.Submit(ScanRequest{Kind: KindDiscovery})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "permanent fault") {
		t.Fatalf("job = %+v; want failed with the runner's error", done)
	}
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d; want 2", done.Attempts)
	}
}

func TestSchedulerRejectsBadRequests(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})
	if _, err := s.Submit(ScanRequest{Kind: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown kind: err = %v; want ErrBadRequest", err)
	}
	if _, err := s.Submit(ScanRequest{Kind: KindInspect}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing provider: err = %v; want ErrBadRequest", err)
	}
}

func TestSchedulerQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := newTestScheduler(t, Config{Workers: 1, QueueCap: 1}, func(ctx context.Context, req ScanRequest) (*ScanResult, error) {
		select {
		case <-gate:
			return fakeResult(req), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	// Fill the single worker and the single queue slot, then overflow.
	ids := make([]string, 0, 2)
	var err error
	for i := 0; i < 8; i++ {
		var job Job
		job, err = s.Submit(ScanRequest{Kind: KindTable1, Seed: int64(i + 1)})
		if err != nil {
			break
		}
		ids = append(ids, job.ID)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v; want ErrQueueFull", err)
	}
	if v := s.Metrics().QueueRejects.With("full").Value(); v < 1 {
		t.Fatalf("queue-reject counter = %g; want >= 1", v)
	}
	close(gate)
	for _, id := range ids {
		if done := waitTerminal(t, s, id); done.Status != StatusDone {
			t.Fatalf("accepted job %s = %s; want done", id, done.Status)
		}
	}
}

func TestSchedulerVerdictChangeEvents(t *testing.T) {
	avail := "●"
	s := newTestScheduler(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return &ScanResult{
			Request:  req,
			Rendered: fmt.Sprintf("r %s %d", avail, req.Seed),
			Verdicts: []Verdict{{Provider: "cc1", Channel: "timer", Availability: avail}},
		}, nil
	})
	events, cancel := s.Subscribe()
	defer cancel()

	collect := func(id string) []Event {
		t.Helper()
		var got []Event
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev := <-events:
				if ev.JobID != id {
					continue
				}
				got = append(got, ev)
				if ev.Type == EventScanDone || ev.Type == EventScanFailed {
					return got
				}
			case <-deadline:
				t.Fatalf("no terminal event for %s; got %+v", id, got)
			}
		}
	}

	job1, err := s.Submit(ScanRequest{Kind: KindTable1, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	evs := collect(job1.ID)
	if len(evs) != 2 || evs[0].Type != EventVerdict || evs[1].Type != EventScanDone {
		t.Fatalf("events = %+v; want [verdict, scan_done]", evs)
	}
	// First observation of a cell is a change with no previous value.
	if !evs[0].Changed || evs[0].Previous != "" || evs[0].Availability != "●" {
		t.Fatalf("first verdict = %+v; want changed, no previous", evs[0])
	}

	// Same cell, same availability: no change flagged.
	avail = "●"
	job2, _ := s.Submit(ScanRequest{Kind: KindTable1, Seed: 2})
	evs = collect(job2.ID)
	if evs[0].Changed {
		t.Fatalf("unchanged verdict flagged as changed: %+v", evs[0])
	}

	// The cell flips: change flagged with the previous availability.
	avail = "◐"
	job3, _ := s.Submit(ScanRequest{Kind: KindTable1, Seed: 3})
	evs = collect(job3.ID)
	if !evs[0].Changed || evs[0].Previous != "●" || evs[0].Availability != "◐" {
		t.Fatalf("flipped verdict = %+v; want changed from ●", evs[0])
	}
	if v := s.Metrics().VerdictChanges.With("cc1").Value(); v != 1 {
		t.Fatalf("verdict-change counter = %g; want 1", v)
	}
}

func TestSchedulerDrainFinishesQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 8, Sleep: instantSleep}, nil)
	s.SetRunner(func(ctx context.Context, req ScanRequest) (*ScanResult, error) {
		select {
		case <-gate:
			return fakeResult(req), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s.Start()

	var ids []string
	for i := 0; i < 4; i++ {
		job, err := s.Submit(ScanRequest{Kind: KindTable1, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining: new submissions are refused, in-flight work continues.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit(ScanRequest{Kind: KindDiscovery}); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never started refusing submissions")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // release the workers
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// No results were lost: every queued job ran to completion.
	for _, id := range ids {
		job, ok := s.JobByID(id)
		if !ok || job.Status != StatusDone || job.Result == nil {
			t.Fatalf("job %s = %+v; want done with result after drain", id, job)
		}
	}
}

func TestSchedulerForcedShutdownCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1, Sleep: instantSleep}, nil)
	started := make(chan struct{})
	s.SetRunner(func(ctx context.Context, _ ScanRequest) (*ScanResult, error) {
		close(started)
		<-ctx.Done() // a scan that only stops when cancelled
		return nil, ctx.Err()
	})
	s.Start()
	job, err := s.Submit(ScanRequest{Kind: KindChaosSweep})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v; want deadline exceeded (forced drain)", err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("status = %s; want canceled after forced drain", done.Status)
	}
}

func TestSchedulerEveryRecurring(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, QueueCap: 64}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		return fakeResult(req), nil
	})
	stop, err := s.Every("nightly", 5*time.Millisecond, ScanRequest{Kind: KindTable1})
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	defer stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var named *Job
		for _, job := range s.Jobs() {
			if job.Name == "nightly" && job.Terminal() {
				j := job
				named = &j
				break
			}
		}
		if named != nil {
			if named.Status != StatusDone {
				t.Fatalf("recurring job = %+v; want done", named)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recurring schedule never produced a finished job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	if _, err := s.Every("bad", 0, ScanRequest{Kind: KindTable1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Every(interval=0) err = %v; want ErrBadRequest", err)
	}
	if _, err := s.Every("bad", time.Second, ScanRequest{Kind: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Every(bad kind) err = %v; want ErrBadRequest", err)
	}
}

func TestHubDropsWhenSubscriberStalls(t *testing.T) {
	h := newHub()
	ch, cancel := h.Subscribe()
	defer cancel()
	dropped := 0
	for i := 0; i < subscriberBuffer+10; i++ {
		dropped += h.Publish(Event{Type: EventVerdict})
	}
	if dropped != 10 {
		t.Fatalf("dropped = %d; want 10 past the buffer", dropped)
	}
	// The buffered prefix is still deliverable.
	select {
	case ev := <-ch:
		if ev.Type != EventVerdict {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("buffered event not deliverable")
	}
}

// TestSchedulerRetryBudgetTerminatesPermanentFailure: a permanently
// failing job must reach a terminal failed status once its deadline-aware
// retry budget elapses — long before a generous attempt bound would have
// let it stop.
func TestSchedulerRetryBudgetTerminatesPermanentFailure(t *testing.T) {
	clock := newFakeClock()
	boom := errors.New("boom")
	cfg := Config{
		Workers:      1,
		MaxAttempts:  100,
		RetryBackoff: 400 * time.Millisecond,
		RetryBudget:  time.Second,
		Now:          clock.Now,
		// Sleeping advances the fake clock instead of waiting, so the
		// budget's deadline arithmetic is exercised without wall time.
		Sleep: func(ctx context.Context, d time.Duration) error {
			clock.Advance(d)
			return ctx.Err()
		},
	}
	s := newTestScheduler(t, cfg, func(context.Context, ScanRequest) (*ScanResult, error) {
		return nil, boom
	})
	job, err := s.Submit(ScanRequest{Kind: KindTable1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusFailed {
		t.Fatalf("status = %s; want failed", done.Status)
	}
	if !strings.Contains(done.Error, "retry budget") {
		t.Fatalf("terminal error should cite the retry budget, got %q", done.Error)
	}
	if !strings.Contains(done.Error, "boom") {
		t.Fatalf("terminal error should wrap the underlying failure, got %q", done.Error)
	}
	// Backoff ladder 400ms, 800ms crosses the 1s budget after 3 attempts —
	// two orders of magnitude below the attempt bound.
	if done.Attempts >= 100 || done.Attempts == 0 {
		t.Fatalf("attempts = %d; want the budget (not MaxAttempts) to terminate", done.Attempts)
	}
}

// TestSchedulerRetryBudgetDefaultNeverPreempts: the default budget
// (MaxAttempts×JobTimeout) is wide enough that the attempt bound, not the
// budget, decides a short ladder's fate — existing behaviour unchanged.
func TestSchedulerRetryBudgetDefaultNeverPreempts(t *testing.T) {
	boom := errors.New("boom")
	s := newTestScheduler(t, Config{Workers: 1, MaxAttempts: 3}, func(context.Context, ScanRequest) (*ScanResult, error) {
		return nil, boom
	})
	job, err := s.Submit(ScanRequest{Kind: KindTable1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusFailed || done.Attempts != 3 {
		t.Fatalf("job = %+v; want 3 attempts then failure", done)
	}
	if strings.Contains(done.Error, "retry budget") {
		t.Fatalf("default budget preempted the attempt bound: %q", done.Error)
	}
}
