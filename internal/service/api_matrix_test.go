package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// fakeMatrixRunner is fakeInspectRunner extended for runtime-aware scans:
// runtime inspections land their verdicts under the runtime name, and
// kind=matrix produces one verdict per matrix target.
func fakeMatrixRunner(ctx context.Context, req ScanRequest) (*ScanResult, error) {
	res := &ScanResult{Request: req, Rendered: "FAKE " + string(req.Kind)}
	switch {
	case req.Kind == KindMatrix:
		for _, name := range MatrixTargetNames() {
			res.Verdicts = append(res.Verdicts,
				Verdict{Provider: name, Channel: "/sys/devices/system/cpu/*/cpufreq/*", Availability: "●"})
		}
	case req.Runtime != "":
		res.Verdicts = []Verdict{
			{Provider: req.Runtime, Channel: "/proc/meminfo", Availability: "○"},
			{Provider: req.Runtime, Channel: "/sys/devices/system/cpu/*/cpufreq/*", Availability: "●"},
		}
	default:
		return fakeInspectRunner(ctx, req)
	}
	return res, nil
}

func TestV1RuntimesEndpoint(t *testing.T) {
	_, srv := newTestAPI(t, Config{Workers: 1}, fakeMatrixRunner)
	resp, body := get(t, srv, "/v1/runtimes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Runtimes []string `json:"runtimes"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want := RuntimeNames()
	if len(out.Runtimes) != len(want) {
		t.Fatalf("runtimes = %v, want %v", out.Runtimes, want)
	}
	for i, n := range want {
		if out.Runtimes[i] != n {
			t.Fatalf("runtimes = %v, want %v (matrix column order)", out.Runtimes, want)
		}
	}
	if resp.Header.Get("X-Total-Count") == "" {
		t.Fatal("missing X-Total-Count")
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("process-static endpoint must carry an ETag")
	}
	// The registry never changes: a conditional request revalidates forever.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/runtimes", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d, want 304", resp2.StatusCode)
	}
}

func TestV1MatrixEndpoint(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeMatrixRunner)

	// Before any scan the matrix is empty but the endpoint serves.
	resp, _ := get(t, srv, "/v1/matrix")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty matrix status %d", resp.StatusCode)
	}
	empty := resp.Header.Get("ETag")

	// A runtime inspection fills in its column.
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"inspect","runtime":"gvisor"}`)
	resp, body := get(t, srv, "/v1/matrix")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if etag := resp.Header.Get("ETag"); etag == "" || etag == empty {
		t.Fatalf("results-epoch ETag must move after a scan: %q -> %q", empty, etag)
	}
	var out struct {
		Matrix []ProviderVerdicts `json:"matrix"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matrix) != 1 || out.Matrix[0].Provider != "gvisor" {
		t.Fatalf("matrix = %s", body)
	}

	// A full matrix scan fills in every column, in canonical order.
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"matrix"}`)
	_, body = get(t, srv, "/v1/matrix")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matrix) != len(MatrixTargetNames()) {
		t.Fatalf("matrix has %d columns, want %d", len(out.Matrix), len(MatrixTargetNames()))
	}
	for i, name := range MatrixTargetNames() {
		if out.Matrix[i].Provider != name {
			t.Fatalf("column %d = %q, want %q (canonical order)", i, out.Matrix[i].Provider, name)
		}
	}

	// runtime= and provider= narrow to one column family member.
	_, body = get(t, srv, "/v1/matrix?runtime=kata")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matrix) != 1 || out.Matrix[0].Provider != "kata" {
		t.Fatalf("runtime filter: %s", body)
	}
	_, body = get(t, srv, "/v1/matrix?provider=cc1")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matrix) != 1 || out.Matrix[0].Provider != "cc1" {
		t.Fatalf("provider filter: %s", body)
	}

	// Unknown runtime names are 404 unknown_target; unknown providers keep
	// the historical not_found.
	resp, body = get(t, srv, "/v1/matrix?runtime=firecracker")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown runtime status %d", resp.StatusCode)
	}
	envelope(t, body, codeUnknownTarget)
	resp, body = get(t, srv, "/v1/matrix?provider=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown provider status %d", resp.StatusCode)
	}
	envelope(t, body, codeNotFound)
}

func TestV1ScanSubmissionRuntimeValidation(t *testing.T) {
	s, srv := newTestAPI(t, Config{Workers: 1}, fakeMatrixRunner)

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/scans", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp, buf[:n]
	}

	// Unknown runtime: 404 with the folded unknown_target code, not the
	// generic bad_request every other validation failure gets.
	resp, body := post(`{"kind":"inspect","runtime":"firecracker"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown runtime status %d: %s", resp.StatusCode, body)
	}
	envelope(t, body, codeUnknownTarget)

	// provider and runtime are mutually exclusive.
	resp, body = post(`{"kind":"inspect","provider":"cc1","runtime":"gvisor"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both-set status %d: %s", resp.StatusCode, body)
	}
	envelope(t, body, codeBadRequest)

	// Unknown provider keeps its historical 400 bad_request.
	resp, body = post(`{"kind":"inspect","provider":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown provider status %d: %s", resp.StatusCode, body)
	}
	envelope(t, body, codeBadRequest)

	// A valid runtime inspection runs; runtime= filters the job list and
	// the verdict rows it produced.
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"inspect","runtime":"podman"}`)
	submitAndWait(t, s, srv, "/v1/scans", `{"kind":"inspect","provider":"cc1"}`)

	_, body = get(t, srv, "/v1/scans?runtime=podman")
	var scans struct {
		Scans []Job `json:"scans"`
	}
	if err := json.Unmarshal(body, &scans); err != nil {
		t.Fatal(err)
	}
	if len(scans.Scans) != 1 || scans.Scans[0].Request.Runtime != "podman" {
		t.Fatalf("runtime job filter: %s", body)
	}

	_, body = get(t, srv, "/v1/results?runtime=podman")
	var results struct {
		Results []ProviderVerdicts `json:"results"`
	}
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Results) != 1 || results.Results[0].Provider != "podman" {
		t.Fatalf("runtime results filter: %s", body)
	}

	resp, body = get(t, srv, "/v1/results?runtime=bogus")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown runtime on results: %d", resp.StatusCode)
	}
	envelope(t, body, codeUnknownTarget)
}

func TestScanRequestRuntimeKeying(t *testing.T) {
	// The dedup key canonicalizes runtime through the shared respcache
	// canonicalizer: provider-only requests keep their historical keys
	// (runtime is omitted when empty), and runtime requests get distinct
	// keys per runtime.
	provOnly := ScanRequest{Kind: KindInspect, Provider: "cc1"}
	withEmpty := ScanRequest{Kind: KindInspect, Provider: "cc1", Runtime: ""}
	if provOnly.Key() != withEmpty.Key() {
		t.Fatal("empty runtime must not perturb historical keys")
	}
	g := ScanRequest{Kind: KindInspect, Runtime: "gvisor"}
	k := ScanRequest{Kind: KindInspect, Runtime: "kata"}
	if g.Key() == k.Key() {
		t.Fatal("different runtimes must key differently")
	}
	if g.Key() == provOnly.Key() {
		t.Fatal("runtime and provider requests must key differently")
	}
	m1 := ScanRequest{Kind: KindMatrix}
	m2 := ScanRequest{Kind: KindMatrix, Workers: 8}
	if m1.Key() != m2.Key() {
		t.Fatal("workers are excluded from the matrix dedup key (byte-identical at any count)")
	}
}
