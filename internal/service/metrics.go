package service

import "repro/internal/telemetry"

// Metrics bundles the scheduler's instrumentation. All families live in
// one telemetry.Registry that cmd/leaksd also exposes at /metrics; tests
// read the same registry through the typed handles.
type Metrics struct {
	Registry *telemetry.Registry

	// ScansTotal counts finished scans by kind and terminal status
	// (done / failed / canceled).
	ScansTotal *telemetry.CounterVec
	// ScanSeconds is scan wall-clock latency by kind (compute only —
	// cache hits are served in-line and recorded by CacheHits instead).
	ScanSeconds *telemetry.HistogramVec
	// QueueDepth is the number of jobs waiting in the bounded queue.
	QueueDepth *telemetry.GaugeVec
	// Inflight is the number of scans currently executing.
	Inflight *telemetry.GaugeVec
	// CacheHits / CacheMisses count Submit-time store lookups.
	CacheHits, CacheMisses *telemetry.CounterVec
	// Retries counts re-executions after a failed attempt — under chaos
	// specs this is the chaos-induced-retry signal.
	Retries *telemetry.CounterVec
	// QueueRejects counts submissions refused because the queue was full
	// or the scheduler was draining.
	QueueRejects *telemetry.CounterVec
	// Verdicts counts leakage verdicts by channel and availability as
	// inspection scans land.
	Verdicts *telemetry.CounterVec
	// VerdictChanges counts verdict cells that flipped availability.
	VerdictChanges *telemetry.CounterVec
	// EventsDropped counts per-subscriber event deliveries shed because a
	// subscriber stalled.
	EventsDropped *telemetry.CounterVec
	// StoreEntries gauges the result store's live size.
	StoreEntries *telemetry.GaugeVec
	// StoreEvictions / StoreExpirations count LRU and TTL removals.
	StoreEvictions, StoreExpirations *telemetry.CounterVec
	// EngineSessions gauges live engine-backed sessions in the pool;
	// EngineSessionHits / EngineSessionMisses mirror pool lookups that
	// reused vs built a session world.
	EngineSessions, EngineSessionHits, EngineSessionMisses *telemetry.GaugeVec
	// EngineFindingHits / EngineFindingMisses mirror the aggregate
	// incremental-engine verdict cache counters; EngineHostRenders /
	// EngineHostHits mirror the shared host-read cache. Gauges because
	// they are snapshots of counters owned by pooled engines (sessions
	// can be evicted, so the aggregate is not monotone).
	EngineFindingHits, EngineFindingMisses *telemetry.GaugeVec
	EngineHostRenders, EngineHostHits      *telemetry.GaugeVec
	// EngineSnapshotRestores mirrors the experiment layer's world-pool
	// counter: session worlds reinstated from a copy-on-write snapshot
	// instead of a full cloud.New rebuild (process-wide and monotone, but a
	// gauge for symmetry with the other mirrored engine counters).
	EngineSnapshotRestores *telemetry.GaugeVec
	// HTTPRequests counts /v1 read-path responses by endpoint and status
	// ("200" or "304"); HTTPRequestSeconds is the serving latency. The
	// serving path resolves each child once at handler construction — With
	// on every request would allocate, and the cache-hit path is contracted
	// to zero allocations.
	HTTPRequests       *telemetry.CounterVec
	HTTPRequestSeconds *telemetry.HistogramVec
	// HTTPCacheHits / HTTPCacheMisses count response-cache lookups by
	// endpoint. A miss is a cold render (epoch just bumped, new window, or
	// the cache is disabled).
	HTTPCacheHits, HTTPCacheMisses *telemetry.CounterVec
	// Policies gauges the live policy records; PolicySyntheses counts
	// synthesis runs by provider.
	Policies        *telemetry.GaugeVec
	PolicySyntheses *telemetry.CounterVec
	// PolicyRollouts counts rollout terminations by provider and terminal
	// phase (done / rolled_back); PolicyRollbacks counts auto-rollbacks
	// specifically (the alerting signal); PolicyBenignFailures counts the
	// individual benign reads a rollout's health check caught broken.
	PolicyRollouts, PolicyRollbacks *telemetry.CounterVec
	PolicyBenignFailures            *telemetry.CounterVec
	// PolicyChannelsClosed / PolicyCanaryContainers gauge the latest
	// rollout's closure and canary-set size per provider.
	PolicyChannelsClosed   *telemetry.GaugeVec
	PolicyCanaryContainers *telemetry.GaugeVec
}

// NewMetrics registers every scheduler metric on reg (a fresh registry if
// nil) under the leaksd_ prefix.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		Registry: reg,
		ScansTotal: reg.Counter("leaksd_scans_total",
			"Finished scans by kind and terminal status.", "kind", "status"),
		ScanSeconds: reg.Histogram("leaksd_scan_duration_seconds",
			"Scan execution latency by kind (cache hits excluded).", nil, "kind"),
		QueueDepth: reg.Gauge("leaksd_queue_depth",
			"Jobs waiting in the bounded scan queue."),
		Inflight: reg.Gauge("leaksd_scans_inflight",
			"Scans currently executing."),
		CacheHits: reg.Counter("leaksd_cache_hits_total",
			"Scan submissions served from the result store."),
		CacheMisses: reg.Counter("leaksd_cache_misses_total",
			"Scan submissions that required computation."),
		Retries: reg.Counter("leaksd_scan_retries_total",
			"Scan attempts re-executed after a failure, by kind.", "kind"),
		QueueRejects: reg.Counter("leaksd_queue_rejects_total",
			"Submissions refused (queue full or draining).", "reason"),
		Verdicts: reg.Counter("leaksd_verdicts_total",
			"Leakage verdicts observed, by channel and availability.", "channel", "availability"),
		VerdictChanges: reg.Counter("leaksd_verdict_changes_total",
			"Verdict cells whose availability changed, by provider.", "provider"),
		EventsDropped: reg.Counter("leaksd_events_dropped_total",
			"Event deliveries shed because a subscriber stalled."),
		StoreEntries: reg.Gauge("leaksd_store_entries",
			"Live entries in the result store."),
		StoreEvictions: reg.Counter("leaksd_store_evictions_total",
			"Result-store entries evicted by LRU pressure."),
		StoreExpirations: reg.Counter("leaksd_store_expirations_total",
			"Result-store entries removed by TTL."),
		EngineSessions: reg.Gauge("leaksd_engine_sessions",
			"Live engine-backed scan sessions in the pool."),
		EngineSessionHits: reg.Gauge("leaksd_engine_session_hits",
			"Pool lookups that reused an existing session world."),
		EngineSessionMisses: reg.Gauge("leaksd_engine_session_misses",
			"Pool lookups that built a new session world."),
		EngineFindingHits: reg.Gauge("leaksd_engine_finding_hits",
			"Aggregate per-path verdicts served from the incremental engine cache."),
		EngineFindingMisses: reg.Gauge("leaksd_engine_finding_misses",
			"Aggregate per-path verdicts re-validated by the incremental engine."),
		EngineHostRenders: reg.Gauge("leaksd_engine_host_renders",
			"Aggregate genuine host-side pseudo-file renders."),
		EngineHostHits: reg.Gauge("leaksd_engine_host_hits",
			"Aggregate host-side reads served from the shared render cache."),
		EngineSnapshotRestores: reg.Gauge("leaksd_engine_snapshot_restores_total",
			"World restores that replaced a full rebuild in the experiment layer."),
		HTTPRequests: reg.Counter("leaksd_http_requests_total",
			"Cached /v1 read-path responses by endpoint and status.", "endpoint", "status"),
		HTTPRequestSeconds: reg.Histogram("leaksd_http_request_seconds",
			"Cached /v1 read-path serving latency by endpoint.",
			telemetry.DefaultServingBuckets(), "endpoint"),
		HTTPCacheHits: reg.Counter("leaksd_http_respcache_hits_total",
			"Response-cache lookups served from a prebuilt entry, by endpoint.", "endpoint"),
		HTTPCacheMisses: reg.Counter("leaksd_http_respcache_misses_total",
			"Response-cache lookups that required a cold render, by endpoint.", "endpoint"),
		Policies: reg.Gauge("leaksd_policies",
			"Live mask-policy records."),
		PolicySyntheses: reg.Counter("leaksd_policy_syntheses_total",
			"Mask-policy synthesis runs, by provider.", "provider"),
		PolicyRollouts: reg.Counter("leaksd_policy_rollouts_total",
			"Policy rollouts reaching a terminal phase, by provider and phase.", "provider", "phase"),
		PolicyRollbacks: reg.Counter("leaksd_policy_rollbacks_total",
			"Canary rollouts auto-rolled-back on benign breakage, by provider.", "provider"),
		PolicyBenignFailures: reg.Counter("leaksd_policy_benign_failures_total",
			"Benign pseudo-file reads a rollout health check found broken, by provider.", "provider"),
		PolicyChannelsClosed: reg.Gauge("leaksd_policy_channels_closed",
			"Table I channels closed by the latest rollout, by provider.", "provider"),
		PolicyCanaryContainers: reg.Gauge("leaksd_policy_canary_containers",
			"Containers in the latest rollout's canary set, by provider.", "provider"),
	}
}
