package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable wall clock for store/scheduler tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func res(s string) *ScanResult { return &ScanResult{Rendered: s} }

func TestStoreGetPutRoundTrip(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(4, time.Minute, clk.Now)
	if _, ok := st.Get("k"); ok {
		t.Fatal("empty store returned a hit")
	}
	st.Put("k", res("v"))
	got, ok := st.Get("k")
	if !ok || got.Rendered != "v" {
		t.Fatalf("Get(k) = %v, %v; want v, true", got, ok)
	}
	hits, misses, _, _ := st.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d; want 1, 1", hits, misses)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(4, time.Minute, clk.Now)
	st.Put("k", res("v"))
	clk.Advance(59 * time.Second)
	if _, ok := st.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.Advance(2 * time.Second) // 61s after Put
	if _, ok := st.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if st.Len() != 0 {
		t.Fatalf("expired entry still resident: Len = %d", st.Len())
	}
	_, _, _, expirations := st.Stats()
	if expirations != 1 {
		t.Fatalf("expirations = %d; want 1", expirations)
	}
}

func TestStorePutRefreshesTTL(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(4, time.Minute, clk.Now)
	st.Put("k", res("v1"))
	clk.Advance(45 * time.Second)
	st.Put("k", res("v2")) // refresh: the same key dedups to one entry
	clk.Advance(45 * time.Second)
	got, ok := st.Get("k") // 90s after first Put, 45s after refresh
	if !ok || got.Rendered != "v2" {
		t.Fatalf("refreshed entry = %v, %v; want v2, true", got, ok)
	}
	if st.Len() != 1 {
		t.Fatalf("refresh duplicated the entry: Len = %d", st.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(3, time.Hour, clk.Now)
	for i := 0; i < 3; i++ {
		st.Put(fmt.Sprintf("k%d", i), res(fmt.Sprintf("v%d", i)))
	}
	// Touch k0 so k1 becomes least-recently-used.
	if _, ok := st.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	st.Put("k3", res("v3")) // over capacity: k1 must go
	if _, ok := st.Get("k1"); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("%s evicted; want it resident", k)
		}
	}
	_, _, evictions, _ := st.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d; want 1", evictions)
	}
}

func TestStoreSweep(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(8, time.Minute, clk.Now)
	st.Put("old1", res("a"))
	st.Put("old2", res("b"))
	clk.Advance(30 * time.Second)
	st.Put("fresh", res("c"))
	clk.Advance(31 * time.Second) // old* at 61s, fresh at 31s
	if n := st.Sweep(); n != 2 {
		t.Fatalf("Sweep removed %d; want 2", n)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after sweep; want 1", st.Len())
	}
	if _, ok := st.Get("fresh"); !ok {
		t.Fatal("sweep removed a live entry")
	}
}

func TestRequestKeyDedup(t *testing.T) {
	base := ScanRequest{Kind: KindTable1}
	// Workers must not change the key: output is byte-identical at any -j.
	if base.Key() != (ScanRequest{Kind: KindTable1, Workers: 8}).Key() {
		t.Error("worker count changed the dedup key")
	}
	// Chaos-off requests ignore the chaos seed (dead state).
	if base.Key() != (ScanRequest{Kind: KindTable1, ChaosSeed: 99}).Key() {
		t.Error("chaos seed changed the key with chaos disabled")
	}
	// Chaos-on requests default the seed to 1, matching -chaosseed.
	a := ScanRequest{Kind: KindTable1, ChaosRate: 0.01}
	b := ScanRequest{Kind: KindTable1, ChaosRate: 0.01, ChaosSeed: 1}
	if a.Key() != b.Key() {
		t.Error("chaos seed 0 and 1 should hash identically under chaos")
	}
	// Everything that can change output bytes must change the key.
	distinct := []ScanRequest{
		{Kind: KindTable1},
		{Kind: KindDiscovery},
		{Kind: KindInspect, Provider: "local"},
		{Kind: KindInspect, Provider: "cc1"},
		{Kind: KindTable1, Seed: 7},
		{Kind: KindTable1, ChaosRate: 0.01},
		{Kind: KindTable1, ChaosRate: 0.01, ChaosSeed: 2},
	}
	seen := make(map[string]ScanRequest)
	for _, r := range distinct {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %+v and %+v collide on key %s", prev, r, k)
		}
		seen[k] = r
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []ScanRequest{
		{},                                    // missing kind
		{Kind: "nope"},                        // unknown kind
		{Kind: KindInspect},                   // inspect without provider
		{Kind: KindInspect, Provider: "mars"}, // unknown provider
		{Kind: KindTable1, ChaosRate: 1.5},    // rate out of range
		{Kind: KindTable1, Workers: -1},       // negative workers
	}
	for _, r := range bad {
		if err := r.Normalize().Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a malformed request", r)
		}
	}
	good := []ScanRequest{
		{Kind: KindTable1},
		{Kind: KindInspect, Provider: "local"},
		{Kind: KindChaosSweep, Workers: 4},
		{Kind: KindFig8, ChaosRate: 0.02, ChaosSeed: 3},
	}
	for _, r := range good {
		if err := r.Normalize().Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v; want nil", r, err)
		}
	}
}
