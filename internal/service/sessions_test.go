package service

import (
	"context"
	"testing"
)

func TestRunScanWithPoolIsByteIdenticalAndCached(t *testing.T) {
	pool := newSessionPool(0)
	ctx := context.Background()

	for _, req := range []ScanRequest{
		{Kind: KindDiscovery},
		{Kind: KindInspect, Provider: "local"},
	} {
		cold, err := runScan(ctx, req)
		if err != nil {
			t.Fatalf("%s: cold run: %v", req.Kind, err)
		}
		first, err := runScanWith(ctx, req, pool)
		if err != nil {
			t.Fatalf("%s: pooled first run: %v", req.Kind, err)
		}
		if first.Rendered != cold.Rendered {
			t.Fatalf("%s: pooled first run differs from cold run", req.Kind)
		}

		missesBefore := pool.info().Stats.FindingMisses
		second, err := runScanWith(ctx, req, pool)
		if err != nil {
			t.Fatalf("%s: pooled second run: %v", req.Kind, err)
		}
		if second.Rendered != cold.Rendered {
			t.Fatalf("%s: pooled second run differs from cold run", req.Kind)
		}
		info := pool.info()
		if info.Stats.FindingMisses != missesBefore {
			t.Errorf("%s: pooled rerun re-validated %d paths, want 0",
				req.Kind, info.Stats.FindingMisses-missesBefore)
		}
	}

	info := pool.info()
	if info.Sessions != 2 || info.SessionMisses != 2 || info.SessionHits != 2 {
		t.Errorf("pool after 2×2 runs: %+v, want 2 sessions, 2 misses, 2 hits", info)
	}
	if info.Stats.FindingHits == 0 {
		t.Error("pooled reruns recorded no engine cache hits")
	}
}

func TestRunScanWithChaosBypassesPool(t *testing.T) {
	pool := newSessionPool(0)
	req := ScanRequest{Kind: KindDiscovery, ChaosRate: 0.02, ChaosSeed: 3}

	pooled, err := runScanWith(context.Background(), req, pool)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	cold, err := runScan(context.Background(), req)
	if err != nil {
		t.Fatalf("chaos cold run: %v", err)
	}
	if pooled.Rendered != cold.Rendered {
		t.Error("chaos run through the pooled path differs from the one-shot path")
	}
	if info := pool.info(); info.Sessions != 0 || info.SessionMisses != 0 {
		t.Errorf("chaos request touched the session pool: %+v", info)
	}
}

func TestSessionPoolLRUEviction(t *testing.T) {
	pool := newSessionPool(2)
	for _, seed := range []int64{101, 102, 103} {
		if _, err := runScanWith(context.Background(), ScanRequest{Kind: KindDiscovery, Seed: seed}, pool); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	info := pool.info()
	if info.Sessions != 2 {
		t.Errorf("pool holds %d sessions, want cap 2", info.Sessions)
	}
	if info.SessionMisses != 3 {
		t.Errorf("pool misses = %d, want 3", info.SessionMisses)
	}

	// The evicted (least recently used) seed rebuilds; the fresh ones hit.
	if _, err := runScanWith(context.Background(), ScanRequest{Kind: KindDiscovery, Seed: 103}, pool); err != nil {
		t.Fatal(err)
	}
	if got := pool.info().SessionHits; got != 1 {
		t.Errorf("rerun of resident seed: hits = %d, want 1", got)
	}
	if _, err := runScanWith(context.Background(), ScanRequest{Kind: KindDiscovery, Seed: 101}, pool); err != nil {
		t.Fatal(err)
	}
	if got := pool.info().SessionMisses; got != 4 {
		t.Errorf("rerun of evicted seed: misses = %d, want 4 (rebuild)", got)
	}
}

func TestScanRequestKeyCanonicalizesPagination(t *testing.T) {
	base := ScanRequest{Kind: KindTable1}
	paged := ScanRequest{Kind: KindTable1, Limit: 10, Offset: 40}
	if base.Key() != paged.Key() {
		t.Error("pagination parameters leaked into the dedup key")
	}
	n := paged.Normalize()
	if n.Limit != 0 || n.Offset != 0 {
		t.Errorf("Normalize kept pagination params: %+v", n)
	}

	// End to end: a /v1 submission carrying pagination junk shares the
	// store entry of a clean legacy submission.
	s := New(Config{Workers: 1, Sleep: instantSleep}, nil)
	s.SetRunner(fakeInspectRunner)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	j1, err := s.Submit(ScanRequest{Kind: KindInspect, Provider: "cc1"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j1.ID)
	j2, err := s.Submit(ScanRequest{Kind: KindInspect, Provider: "cc1", Limit: 5, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Error("paginated resubmission missed the store — key canonicalization failed")
	}
}
