package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/service/respcache"
)

// Kind names a scan job type — the job-shaped entry points of
// internal/experiments the scheduler knows how to run.
type Kind string

// Supported scan kinds.
const (
	// KindTable1 runs the full six-provider Table I inspection.
	KindTable1 Kind = "table1"
	// KindInspect inspects a single provider (Request.Provider).
	KindInspect Kind = "inspect"
	// KindDiscovery sweeps the local testbed for leaking files beyond the
	// Table I registry.
	KindDiscovery Kind = "discovery"
	// KindMatrix runs the runtime-aware availability matrix: the Table I
	// channels plus the frequency channel against the five commercial
	// clouds plus the four modern runtime targets.
	KindMatrix Kind = "matrix"
	// KindFig3 runs the synergistic-vs-periodic power attack comparison.
	KindFig3 Kind = "fig3"
	// KindFig8 measures the defense's modeling error on the SPEC subset.
	KindFig8 Kind = "fig8"
	// KindChaosSweep runs the fault-rate degradation grid.
	KindChaosSweep Kind = "chaossweep"
)

// Kinds lists every supported kind (for validation errors and /channels
// style introspection).
func Kinds() []Kind {
	return []Kind{KindTable1, KindInspect, KindDiscovery, KindMatrix, KindFig3, KindFig8, KindChaosSweep}
}

// ScanRequest is the client-facing description of one scan. The zero value
// of every optional field selects the CLI default, so a bare
// {"kind":"table1"} reproduces `leakscan -table1` byte for byte.
type ScanRequest struct {
	Kind Kind `json:"kind"`
	// Provider selects the profile for KindInspect ("local", "lxc", "cc1"
	// … "cc5"); ignored by other kinds.
	Provider string `json:"provider,omitempty"`
	// Runtime selects a container-runtime target for KindInspect
	// ("gvisor", "kata", "rootless", "podman") — mutually exclusive with
	// Provider; ignored by other kinds. Runtime inspections roll up over
	// the matrix channel set (Table I plus the frequency channel).
	Runtime string `json:"runtime,omitempty"`
	// Seed is the datacenter seed for seed-varied campaigns; 0 selects the
	// kind's historical default (experiments.DefaultInspectSeed etc.).
	Seed int64 `json:"seed,omitempty"`
	// ChaosRate arms deterministic fault injection on the scan's
	// observation surface; 0 disables it.
	ChaosRate float64 `json:"chaos_rate,omitempty"`
	// ChaosSeed seeds the fault streams (only meaningful with ChaosRate >
	// 0; defaults to 1, matching the CLI flag default).
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Workers bounds the scan's internal worker pool (0 = GOMAXPROCS).
	// Excluded from the dedup key: output is byte-identical at any count.
	Workers int `json:"workers,omitempty"`
	// Limit / Offset are the /v1 pagination parameters. Clients that reuse
	// their list-query builders when submitting scans may send them; they
	// never affect what a scan computes, so Normalize clears them and Key
	// excludes them — a paginated /v1 submission and a legacy submission of
	// the same scan share one store entry.
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
}

// Normalize canonicalizes a request so that equal questions hash equal:
// chaos-off requests drop their chaos seed (it is dead state), chaos-on
// requests default the seed to 1 exactly like the -chaosseed flag, the
// datacenter seed resolves to the kind's actual default (so seed 0 and the
// explicit historical seed dedup to one cache entry) or to nothing for
// kinds that ignore it, and the /v1 pagination parameters are cleared (they
// shape list responses, never scan output).
func (r ScanRequest) Normalize() ScanRequest {
	r.Limit = 0
	r.Offset = 0
	if r.ChaosRate <= 0 {
		r.ChaosRate = 0
		r.ChaosSeed = 0
	} else if r.ChaosSeed == 0 {
		r.ChaosSeed = 1
	}
	if r.Kind != KindInspect {
		r.Provider = ""
		r.Runtime = ""
	}
	switch r.Kind {
	case KindTable1, KindInspect, KindMatrix:
		if r.Seed == 0 {
			r.Seed = experiments.DefaultInspectSeed
		}
	case KindDiscovery:
		if r.Seed == 0 {
			r.Seed = experiments.DefaultDiscoverySeed
		}
	default:
		r.Seed = 0 // fig3 / fig8 / chaossweep run fixed internal seeds
	}
	return r
}

// Validate rejects malformed requests with client-facing errors.
func (r ScanRequest) Validate() error {
	switch r.Kind {
	case KindTable1, KindDiscovery, KindMatrix, KindFig3, KindFig8, KindChaosSweep:
	case KindInspect:
		if r.Provider != "" && r.Runtime != "" {
			return fmt.Errorf("kind %q takes provider or runtime, not both", r.Kind)
		}
		if r.Runtime != "" {
			if _, ok := RuntimeByName(r.Runtime); !ok {
				return fmt.Errorf("%w: unknown runtime %q (one of %v)", ErrUnknownTarget, r.Runtime, RuntimeNames())
			}
			break
		}
		if r.Provider == "" {
			return fmt.Errorf("kind %q requires a provider (one of %v)", r.Kind, ProviderNames())
		}
		if _, ok := ProviderByName(r.Provider); !ok {
			return fmt.Errorf("unknown provider %q (one of %v)", r.Provider, ProviderNames())
		}
	case "":
		return fmt.Errorf("missing kind (one of %v)", Kinds())
	default:
		return fmt.Errorf("unknown kind %q (one of %v)", r.Kind, Kinds())
	}
	if r.ChaosRate < 0 || r.ChaosRate > 1 {
		return fmt.Errorf("chaos_rate %g outside [0,1]", r.ChaosRate)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers %d negative", r.Workers)
	}
	return nil
}

// Chaos converts the request's chaos knobs to a spec.
func (r ScanRequest) Chaos() chaos.Spec {
	if r.ChaosRate <= 0 {
		return chaos.Spec{}
	}
	return chaos.Spec{Rate: r.ChaosRate, Seed: r.ChaosSeed}
}

// Key is the content hash under which this request's result is stored:
// identical scan configs dedup to one cache entry. The canonical string
// covers everything that can change the output bytes — kind, provider,
// seed, chaos spec — and nothing that cannot (worker count, pagination).
// The provider/pagination portion renders through respcache.Query.Canonical
// — the same canonicalizer the /v1 response cache keys on — so the scan
// dedup key and the response-cache key cannot drift apart on how
// equivalent spellings (limit=50 vs absent, reordered parameters)
// canonicalize.
func (r ScanRequest) Key() string {
	n := r.Normalize()
	// Runtime rides in the same canonicalizer; the empty runtime emits no
	// runtime= term, so every pre-runtime request keeps its historical key.
	q := respcache.Query{Provider: n.Provider, Runtime: n.Runtime, Limit: respcache.NoLimit}
	canon := fmt.Sprintf("v2|%s|%s|%d|%g|%d", n.Kind, q.Canonical(), n.Seed, n.ChaosRate, n.ChaosSeed)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:16])
}

// ProviderByName resolves a profile by its Table I name.
func ProviderByName(name string) (cloud.ProviderProfile, bool) {
	for _, p := range allProviders() {
		if p.Name == name {
			return p, true
		}
	}
	return cloud.ProviderProfile{}, false
}

// ProviderNames lists the inspectable profiles in Table I column order.
func ProviderNames() []string {
	ps := allProviders()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

func allProviders() []cloud.ProviderProfile {
	return append([]cloud.ProviderProfile{cloud.LocalTestbed(), cloud.LocalLXC()}, cloud.CommercialClouds()...)
}

// RuntimeByName resolves a container-runtime target by name. Runtime
// targets are deliberately not providers: /v1/providers stays
// byte-identical, and the runtime names live on their own endpoint.
func RuntimeByName(name string) (cloud.ProviderProfile, bool) {
	for _, p := range cloud.RuntimeTargets() {
		if p.Name == name {
			return p, true
		}
	}
	return cloud.ProviderProfile{}, false
}

// RuntimeNames lists the runtime targets in matrix column order.
func RuntimeNames() []string {
	ps := cloud.RuntimeTargets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// MatrixTargetNames lists every matrix column (clouds then runtimes) in
// canonical order.
func MatrixTargetNames() []string {
	ps := cloud.MatrixTargets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
