package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/cluster"
)

// codeWrongRole rejects cluster requests sent to a node of the wrong
// role: a shard POSTed to a coordinator, a fleet scan POSTed to a worker.
// 409 rather than 404 — the route exists, the node's state conflicts.
const codeWrongRole = "wrong_role"

// clusterScanResponse is the coordinator's fleet-scan summary envelope.
// Raw findings stay inside the cluster (they are per-container slices of
// the deterministic world, reproducible from the spec); the HTTP surface
// serves the per-shard status map and the per-container leak counts.
type clusterScanResponse struct {
	Spec       cluster.Spec `json:"spec"`
	Generation uint64       `json:"generation"`
	Partial    bool         `json:"partial"`
	// DurationSeconds is the wall time of the whole partitioned scan.
	DurationSeconds float64 `json:"duration_seconds"`
	// Leaking counts Identical/Partial findings per fleet container
	// (-1 = the container's shard failed and degraded out of the result).
	Leaking []int                 `json:"leaking"`
	Shards  []cluster.ShardStatus `json:"shards"`
}

// requireRole gates a cluster endpoint on the node's role.
func (a *api) requireRole(w http.ResponseWriter, want cluster.Role) bool {
	if got := a.cfg.Cluster.Role(); got != want {
		writeErrorV1(w, http.StatusConflict, codeWrongRole,
			"node role is %q; this endpoint requires %q", got, want)
		return false
	}
	return true
}

// getClusterV1 serves GET /v1/cluster: the node's role envelope — worker
// heartbeat counters, or the coordinator's membership/shard/requeue view.
func (a *api) getClusterV1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.cfg.Cluster.Status())
}

// postClusterScanV1 serves POST /v1/cluster/scans (coordinator only): one
// partitioned fleet scan, synchronous, degraded shards reported per shard.
func (a *api) postClusterScanV1(w http.ResponseWriter, r *http.Request) {
	if !a.requireRole(w, cluster.RoleCoordinator) {
		return
	}
	var spec cluster.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	res, err := a.cfg.Cluster.Coordinator().Scan(r.Context(), spec)
	if err != nil && res == nil {
		writeErrorV1(w, http.StatusInternalServerError, codeInternal, "%v", err)
		return
	}
	// A partial result (some shards failed terminally, including the
	// all-failed case) still serves the envelope: graceful degradation is
	// visible per shard, not hidden behind an opaque 500.
	writeJSON(w, http.StatusOK, clusterScanResponse{
		Spec:            res.Spec,
		Generation:      res.Generation,
		Partial:         res.Partial,
		DurationSeconds: res.Duration.Seconds(),
		Leaking:         res.LeakingPerContainer(),
		Shards:          res.Shards,
	})
}

// postClusterShardV1 serves POST /v1/cluster/shards (worker only): execute
// one shard of a partitioned fleet scan and return its findings — the
// endpoint cluster.HTTPTransport calls.
func (a *api) postClusterShardV1(w http.ResponseWriter, r *http.Request) {
	if !a.requireRole(w, cluster.RoleWorker) {
		return
	}
	var req cluster.ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeErrorV1(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	res, err := a.cfg.Cluster.Worker().ExecShard(r.Context(), &req)
	if err != nil {
		status, code := http.StatusInternalServerError, codeInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, codeDraining
		}
		writeErrorV1(w, status, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// getClusterPingV1 serves GET /v1/cluster/ping (worker only): the liveness
// probe the coordinator's heartbeat loop hits.
func (a *api) getClusterPingV1(w http.ResponseWriter, _ *http.Request) {
	if !a.requireRole(w, cluster.RoleWorker) {
		return
	}
	writeJSON(w, http.StatusOK, a.cfg.Cluster.Worker().Heartbeat())
}
