package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fastrand"
)

// doGet drives a handler directly (no TCP) with an optional If-None-Match.
func doGet(h http.Handler, target, inm string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// waitScan submits a scan and waits for its terminal snapshot.
func waitScan(t *testing.T, s *Scheduler, req ScanRequest) Job {
	t.Helper()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !job.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID, job.Status)
		}
		time.Sleep(time.Millisecond)
		job, _ = s.JobByID(job.ID)
	}
	return job
}

// TestV1CacheHitBodiesMatchColdRenders is the cache-correctness property
// test: two handlers over ONE scheduler — cached and cache-disabled —
// must answer every query with byte-identical bodies across a randomized
// sequence of queries and state mutations, and a repeated query (a
// guaranteed cache hit) must replay the same bytes.
func TestV1CacheHitBodiesMatchColdRenders(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2}, fakeInspectRunner)
	cached := NewHandler(APIConfig{Scheduler: s, Version: "v"})
	cold := NewHandler(APIConfig{Scheduler: s, Version: "v", DisableResponseCache: true})

	rng := fastrand.New(42)
	pick := func(opts []string) string { return opts[rng.Intn(len(opts))] }
	providers := []string{"", "provider=local", "provider=cc1", "provider=cc2", "provider=nope"}
	verdicts := []string{"", "verdict=available", "verdict=●", "verdict=partial", "verdict=◐",
		"verdict=unavailable", "verdict=bogus"}
	limits := []string{"", "limit=0", "limit=1", "limit=2", "limit=50", "limit=-1"}
	offsets := []string{"", "offset=0", "offset=1", "offset=3", "offset=99"}
	endpoints := []string{"/v1/results", "/v1/scans", "/v1/channels", "/v1/providers", "/v1/engine", "/v1/version"}
	mutProviders := []string{"local", "cc1", "cc2"}

	for i := 0; i < 400; i++ {
		if rng.Intn(8) == 0 {
			waitScan(t, s, ScanRequest{
				Kind:     KindInspect,
				Provider: mutProviders[rng.Intn(len(mutProviders))],
				Seed:     int64(1 + rng.Intn(3)),
			})
		}
		target := endpoints[rng.Intn(len(endpoints))]
		if target == "/v1/results" || target == "/v1/scans" {
			params := []string{pick(providers), pick(verdicts), pick(limits), pick(offsets)}
			// Shuffle: parameter order must not matter.
			for j := len(params) - 1; j > 0; j-- {
				k := rng.Intn(j + 1)
				params[j], params[k] = params[k], params[j]
			}
			var nonEmpty []string
			for _, p := range params {
				if p != "" {
					nonEmpty = append(nonEmpty, p)
				}
			}
			if len(nonEmpty) > 0 {
				target += "?" + strings.Join(nonEmpty, "&")
			}
		}

		warm := doGet(cached, target, "") // miss or hit, depending on history
		hit := doGet(cached, target, "")  // guaranteed hit (no mutation between)
		fresh := doGet(cold, target, "")

		if warm.Code != fresh.Code || hit.Code != fresh.Code {
			t.Fatalf("step %d %s: status cached=%d/%d cold=%d", i, target, warm.Code, hit.Code, fresh.Code)
		}
		if warm.Body.String() != fresh.Body.String() {
			t.Fatalf("step %d %s: cached body diverged from cold render:\ncached: %s\ncold:   %s",
				i, target, warm.Body.String(), fresh.Body.String())
		}
		if hit.Body.String() != fresh.Body.String() {
			t.Fatalf("step %d %s: cache-hit body diverged from cold render", i, target)
		}
		if got, want := warm.Header().Get("X-Total-Count"), fresh.Header().Get("X-Total-Count"); got != want {
			t.Fatalf("step %d %s: X-Total-Count cached=%q cold=%q", i, target, got, want)
		}
	}
}

// TestV1ETagLifecycle: a 200 carries a strong epoch-derived ETag,
// If-None-Match revalidates with a 304, and any scheduler mutation bumps
// the tag so stale validators fetch fresh bytes.
func TestV1ETagLifecycle(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2}, fakeInspectRunner)
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})

	first := doGet(h, "/v1/results", "")
	etag := first.Header().Get("ETag")
	if first.Code != http.StatusOK || etag == "" {
		t.Fatalf("GET /v1/results: code=%d etag=%q", first.Code, etag)
	}
	if !strings.HasPrefix(etag, `"results-e`) {
		t.Fatalf("ETag %q does not carry the endpoint-epoch form", etag)
	}
	if rec := doGet(h, "/v1/results", etag); rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("revalidation: code=%d body=%q", rec.Code, rec.Body.String())
	}

	// A completed scan mutates the verdict state: new epoch, new tag, and
	// the stale validator gets a full 200.
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "cc2"})
	second := doGet(h, "/v1/results", etag)
	if second.Code != http.StatusOK {
		t.Fatalf("stale If-None-Match after mutation: code=%d, want 200", second.Code)
	}
	if newTag := second.Header().Get("ETag"); newTag == etag || newTag == "" {
		t.Fatalf("ETag did not bump across a mutation: %q -> %q", etag, newTag)
	}

	// /v1/scans watches job mutations: even a cache-hit submission (a new
	// done job) bumps it.
	before := doGet(h, "/v1/scans", "").Header().Get("ETag")
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "cc2"}) // dedup hit
	if after := doGet(h, "/v1/scans", "").Header().Get("ETag"); after == before {
		t.Fatalf("scans ETag did not bump across a submission: %q", after)
	}

	// Static endpoints revalidate forever.
	for _, ep := range []string{"/v1/channels", "/v1/providers", "/v1/version"} {
		tag := doGet(h, ep, "").Header().Get("ETag")
		if tag == "" {
			t.Fatalf("%s: no ETag", ep)
		}
		if rec := doGet(h, ep, tag); rec.Code != http.StatusNotModified {
			t.Fatalf("%s: revalidation code=%d", ep, rec.Code)
		}
	}
}

// TestV1EngineETagBumpsOnRealScan drives the REAL scan path (no fake
// runner): engine session churn and a chaos-armed kernel mutation must
// both move the /v1/engine and /v1/results ETags.
func TestV1EngineETagBumpsOnRealScan(t *testing.T) {
	s := New(Config{Workers: 1}, nil)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})

	engineBefore := doGet(h, "/v1/engine", "").Header().Get("ETag")
	resultsBefore := doGet(h, "/v1/results", "").Header().Get("ETag")

	// Session churn: a chaos-free inspect builds a pooled engine world.
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "local"})
	engineMid := doGet(h, "/v1/engine", "").Header().Get("ETag")
	if engineMid == engineBefore || engineMid == "" {
		t.Fatalf("engine ETag did not bump on session churn: %q -> %q", engineBefore, engineMid)
	}

	// Kernel mutation under chaos: fault injection on the observation
	// surface still lands results and bumps both surfaces.
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "local", ChaosRate: 0.3, ChaosSeed: 7})
	if engineAfter := doGet(h, "/v1/engine", "").Header().Get("ETag"); engineAfter == engineMid {
		t.Fatalf("engine ETag did not bump on a chaos scan: %q", engineAfter)
	}
	if resultsAfter := doGet(h, "/v1/results", "").Header().Get("ETag"); resultsAfter == resultsBefore {
		t.Fatalf("results ETag did not bump on a chaos scan: %q", resultsAfter)
	}
}

// TestV1EngineUncacheableWhileScanning: while a scan is in flight the
// session pool mutates without epoch bumps, so /v1/engine must bypass the
// cache — no ETag, no 304 — and resume caching at quiescence.
func TestV1EngineUncacheableWhileScanning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s := newTestScheduler(t, Config{Workers: 1}, func(_ context.Context, req ScanRequest) (*ScanResult, error) {
		close(started)
		<-release
		return fakeResult(req), nil
	})
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})

	quietTag := doGet(h, "/v1/engine", "").Header().Get("ETag")
	if quietTag == "" {
		t.Fatal("quiescent /v1/engine carried no ETag")
	}

	if _, err := s.Submit(ScanRequest{Kind: KindTable1}); err != nil {
		t.Fatal(err)
	}
	<-started
	busy := doGet(h, "/v1/engine", quietTag)
	if busy.Code != http.StatusOK {
		t.Fatalf("busy /v1/engine honoured If-None-Match: code=%d", busy.Code)
	}
	if tag := busy.Header().Get("ETag"); tag != "" {
		t.Fatalf("busy /v1/engine carried ETag %q; must be uncacheable mid-scan", tag)
	}
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for s.RunningScans() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("scan did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	if tag := doGet(h, "/v1/engine", "").Header().Get("ETag"); tag == "" {
		t.Fatal("quiescent /v1/engine lost its ETag")
	}
}

// TestV1EquivalentSpellingsShareCacheEntry: canonicalization means the
// second and later equivalent spellings are cache hits, not renders.
func TestV1EquivalentSpellingsShareCacheEntry(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2}, fakeInspectRunner)
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "local"})

	hits := s.Metrics().HTTPCacheHits.With("results")
	misses := s.Metrics().HTTPCacheMisses.With("results")
	spellings := []string{
		"/v1/results?provider=local&limit=50",
		"/v1/results?limit=50&provider=local",          // reordered
		"/v1/results?limit=50&provider=local&offset=0", // default spelled out
		"/v1/results?provider=local&limit=50&foo=bar",  // unknown param
		"/v1/results?provider=local&limit=50&limit=7",  // first duplicate wins
	}
	h0, m0 := hits.Value(), misses.Value()
	for _, target := range spellings {
		doGet(h, target, "")
	}
	if gotMiss := misses.Value() - m0; gotMiss != 1 {
		t.Fatalf("equivalent spellings caused %v renders, want 1", gotMiss)
	}
	if gotHits := hits.Value() - h0; gotHits != float64(len(spellings)-1) {
		t.Fatalf("equivalent spellings got %v cache hits, want %d", gotHits, len(spellings)-1)
	}
}

// TestV1CacheDisabledServesNoETag: -respcache=false turns off both the
// cache and the conditional-request machinery.
func TestV1CacheDisabledServesNoETag(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2}, fakeInspectRunner)
	h := NewHandler(APIConfig{Scheduler: s, Version: "v", DisableResponseCache: true})
	waitScan(t, s, ScanRequest{Kind: KindInspect, Provider: "local"})

	rec := doGet(h, "/v1/results", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code=%d", rec.Code)
	}
	if tag := rec.Header().Get("ETag"); tag != "" {
		t.Fatalf("cache-disabled response carried ETag %q", tag)
	}
	if rec := doGet(h, "/v1/results", `"results-e1"`); rec.Code != http.StatusNotModified && rec.Code != http.StatusOK {
		t.Fatalf("code=%d", rec.Code)
	} else if rec.Code == http.StatusNotModified {
		t.Fatal("cache-disabled handler answered 304")
	}
	if got := rec.Header().Get("X-Total-Count"); got == "" {
		t.Fatal("cache-disabled response lost X-Total-Count")
	}
}

// TestHTTPServingMetricsExposed: the leaksd_http_* families land in the
// Prometheus exposition after traffic.
func TestHTTPServingMetricsExposed(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2}, fakeInspectRunner)
	h := NewHandler(APIConfig{Scheduler: s, Version: "v"})
	doGet(h, "/v1/results", "")
	doGet(h, "/v1/results", "")
	tag := doGet(h, "/v1/results", "").Header().Get("ETag")
	doGet(h, "/v1/results", tag)

	metrics := doGet(h, "/v1/metrics", "").Body.String()
	for _, want := range []string{
		`leaksd_http_requests_total{endpoint="results",status="200"} 3`,
		`leaksd_http_requests_total{endpoint="results",status="304"} 1`,
		`leaksd_http_respcache_hits_total{endpoint="results"} 3`,
		`leaksd_http_respcache_misses_total{endpoint="results"} 1`,
		"leaksd_http_request_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestScanRequestKeyCanonicalization is the regression test for the shared
// canonicalizer: pagination/worker spellings that cannot change scan
// output hash to one key; spellings that can change output hash apart.
func TestScanRequestKeyCanonicalization(t *testing.T) {
	base := ScanRequest{Kind: KindInspect, Provider: "local"}
	same := []ScanRequest{
		{Kind: KindInspect, Provider: "local", Limit: 50},
		{Kind: KindInspect, Provider: "local", Offset: 3},
		{Kind: KindInspect, Provider: "local", Limit: 50, Offset: 3, Workers: 8},
		{Kind: KindInspect, Provider: "local", Seed: 0x1ea4}, // the historical default seed
	}
	for _, r := range same {
		if r.Key() != base.Key() {
			t.Errorf("%+v.Key() = %q, want %q (equivalent spellings must share one store entry)",
				r, r.Key(), base.Key())
		}
	}
	diff := []ScanRequest{
		{Kind: KindInspect, Provider: "cc1"},
		{Kind: KindInspect, Provider: "local", Seed: 2},
		{Kind: KindInspect, Provider: "local", ChaosRate: 0.5},
		{Kind: KindTable1},
	}
	seen := map[string]string{base.Key(): "base"}
	for _, r := range diff {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("%+v.Key() collides with %s", r, prev)
		}
		seen[k] = "variant"
	}
	// Chaos seed defaulting matches the -chaosseed flag default.
	a := ScanRequest{Kind: KindTable1, ChaosRate: 0.5}
	b := ScanRequest{Kind: KindTable1, ChaosRate: 0.5, ChaosSeed: 1}
	if a.Key() != b.Key() {
		t.Error("chaos seed 0 and the explicit default 1 must share a key")
	}
}
