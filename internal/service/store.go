package service

import (
	"container/list"
	"sync"
	"time"
)

// ScanResult is the structured outcome of one scan, stored under the
// request's content hash. Rendered is byte-identical to what the
// corresponding CLI invocation prints (the acceptance contract of the
// service layer); Verdicts is the structured form clients consume.
type ScanResult struct {
	Request ScanRequest `json:"request"`
	// Rendered is the experiment's String() output.
	Rendered string `json:"rendered"`
	// Verdicts flattens per-provider per-channel availability (inspection
	// kinds only; empty for fig3/fig8/chaossweep).
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// CompletedAt is when the scan finished (store insertion time).
	CompletedAt time.Time `json:"completed_at"`
}

// Verdict is one (provider, channel) availability cell of Table I.
type Verdict struct {
	Provider     string `json:"provider"`
	Channel      string `json:"channel"`
	Availability string `json:"availability"`
}

// Store is the in-memory result store: content-hash keyed, TTL-expired,
// LRU-evicted. It exists so that identical scan configs are served from
// cache instead of recomputed — a Table I sweep costs seconds of CPU, and
// a fleet dashboard polling it should not multiply that by its refresh
// rate.
//
// The store never hands out aged-out data: Get checks TTL before LRU
// promotion, and expired entries are removed on sight (plus wholesale by
// Sweep, which the scheduler calls opportunistically).
type Store struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	now func() time.Time

	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions, expirations uint64
}

type storeEntry struct {
	key      string
	res      *ScanResult
	storedAt time.Time
}

// NewStore builds a store. cap <= 0 selects 128 entries; ttl <= 0 selects
// 15 minutes; now == nil selects time.Now (tests inject a fake clock).
func NewStore(capacity int, ttl time.Duration, now func() time.Time) *Store {
	if capacity <= 0 {
		capacity = 128
	}
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &Store{
		cap:     capacity,
		ttl:     ttl,
		now:     now,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the live result for key, promoting it to most-recently-used.
// An expired entry is deleted and reported as a miss.
func (s *Store) Get(key string) (*ScanResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	ent := el.Value.(*storeEntry)
	if s.now().Sub(ent.storedAt) >= s.ttl {
		s.removeLocked(el)
		s.expirations++
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.hits++
	return ent.res, true
}

// Put stores res under key (refreshing the TTL if the key exists) and
// evicts the least-recently-used entry when over capacity.
func (s *Store) Put(key string, res *ScanResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*storeEntry)
		ent.res = res
		ent.storedAt = s.now()
		s.lru.MoveToFront(el)
		return
	}
	el := s.lru.PushFront(&storeEntry{key: key, res: res, storedAt: s.now()})
	s.entries[key] = el
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.evictions++
	}
}

// Sweep removes every expired entry and returns how many it removed.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for el := s.lru.Back(); el != nil; {
		prev := el.Prev()
		if s.now().Sub(el.Value.(*storeEntry).storedAt) >= s.ttl {
			s.removeLocked(el)
			s.expirations++
			n++
		}
		el = prev
	}
	return n
}

// Len reports the live entry count (expired-but-unswept entries included;
// they can never be observed through Get).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats reports cumulative hit/miss/eviction/expiration counts.
func (s *Store) Stats() (hits, misses, evictions, expirations uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, s.expirations
}

func (s *Store) removeLocked(el *list.Element) {
	ent := el.Value.(*storeEntry)
	delete(s.entries, ent.key)
	s.lru.Remove(el)
}
