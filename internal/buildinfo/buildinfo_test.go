package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringWithRealBuildInfo(t *testing.T) {
	s := String("leakscan")
	if !strings.HasPrefix(s, "leakscan ") {
		t.Fatalf("version string %q lacks binary name prefix", s)
	}
}

func TestStringRendersRevisionAndDirty(t *testing.T) {
	orig := read
	defer func() { read = orig }()
	read = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			GoVersion: "go1.24.0",
			Main:      debug.Module{Version: "(devel)"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	s := String("leaksd")
	for _, want := range []string{"leaksd", "devel", "(rev 0123456789ab, dirty)", "go1.24.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("version %q lacks %q", s, want)
		}
	}
}

func TestStringWithoutBuildInfo(t *testing.T) {
	orig := read
	defer func() { read = orig }()
	read = func() (*debug.BuildInfo, bool) { return nil, false }
	if got := String("powersim"); got != "powersim (no build info)" {
		t.Fatalf("got %q", got)
	}
}
