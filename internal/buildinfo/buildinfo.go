// Package buildinfo derives a human-readable build/version string from the
// binary's embedded module metadata (runtime/debug.ReadBuildInfo): module
// version, VCS revision + dirty flag when stamped, and the Go toolchain.
// All four binaries expose it behind -version so operators can tell which
// build produced which artifact.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// read is an injection point for tests; production uses debug.ReadBuildInfo.
var read = debug.ReadBuildInfo

// String renders "name version (rev abcdef12, dirty) go1.24.0" with
// whatever subset of that metadata the build actually embedded.
func String(name string) string {
	bi, ok := read()
	if !ok {
		return name + " (no build info)"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = ", dirty"
			}
		}
	}
	parts := []string{name, version}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, fmt.Sprintf("(rev %s%s)", rev, modified))
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	return strings.Join(parts, " ")
}
