package texttable

import (
	"strings"
	"testing"
)

func TestRendersAlignedColumns(t *testing.T) {
	tb := New("Channel", "CC1", "CC2")
	tb.Row("/proc/uptime", "●", "○")
	tb.Row("/proc/sys/kernel/random/boot_id", "●", "●")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Channel") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule missing: %q", lines[1])
	}
	// Columns align: the CC1 glyph starts at the same offset in both rows.
	idx2 := strings.Index(lines[2], "●")
	idx3 := strings.Index(lines[3], "●")
	if idx2 <= 0 || idx3 <= 0 {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	// Row 3's channel is longer, so its glyph must be further right or the
	// short row padded to match; with padding both land at equal offsets.
	if strings.Count(lines[2][:idx2], " ") == 0 {
		t.Fatalf("no padding before glyph:\n%s", out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("A", "B", "C")
	tb.Row("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Fatal("row lost")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := New("M")
	tb.Row("●")
	tb.Row("◐")
	tb.Row("○")
	out := tb.String()
	if strings.Count(out, "\n") != 5 {
		t.Fatalf("unexpected shape:\n%q", out)
	}
}
