package texttable

import (
	"strings"
	"testing"
)

func TestSparklineShapes(t *testing.T) {
	up := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if up != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", up)
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Fatalf("flat = %q", flat)
	}
}

func TestSparklineDownsamples(t *testing.T) {
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i)
	}
	s := Sparkline(vs, 40)
	if n := len([]rune(s)); n != 40 {
		t.Fatalf("width = %d", n)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[39] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
}

func TestSparklineShortSeries(t *testing.T) {
	s := Sparkline([]float64{1, 9}, 40)
	if n := len([]rune(s)); n != 2 {
		t.Fatalf("short series width = %d", n)
	}
	if !strings.Contains(s, "█") {
		t.Fatalf("missing max glyph: %q", s)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("nil series should be empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero width should be empty")
	}
}
