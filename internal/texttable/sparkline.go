package texttable

import "strings"

// sparkGlyphs are the eight block-element levels of a terminal sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a fixed-width line of block glyphs scaled
// between the series min and max — the terminal stand-in for the paper's
// figure panels. Series longer than width are downsampled by averaging;
// shorter series render one glyph per point.
func Sparkline(vs []float64, width int) string {
	if len(vs) == 0 || width <= 0 {
		return ""
	}
	// Downsample to width buckets.
	buckets := make([]float64, 0, width)
	if len(vs) <= width {
		buckets = append(buckets, vs...)
	} else {
		per := float64(len(vs)) / float64(width)
		for b := 0; b < width; b++ {
			lo := int(float64(b) * per)
			hi := int(float64(b+1) * per)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > len(vs) {
				hi = len(vs)
			}
			var sum float64
			for _, v := range vs[lo:hi] {
				sum += v
			}
			buckets = append(buckets, sum/float64(hi-lo))
		}
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}
