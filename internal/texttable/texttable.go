// Package texttable renders the aligned plain-text tables the benchmark
// harnesses print when regenerating the paper's tables.
package texttable

import (
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends one row; short rows are padded with empty cells.
func (t *Table) Row(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with single-space-padded columns and a rule
// under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
