package repro

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/policy"
)

// BenchmarkPolicySynthesis measures the full policy pipeline on CC1 —
// mine the benign read surface, synthesize the deny/empty rule set, and
// verify closure against a frozen world — reporting the headline closure
// ratio and rule count alongside the usual time/alloc metrics. This is
// the cost of one POST /v1/policies synthesis, end to end.
func BenchmarkPolicySynthesis(b *testing.B) {
	var (
		rules   int
		closure float64
	)
	for i := 0; i < b.N; i++ {
		pol, rep, err := policy.Generate(cloud.CC1(), 0, policy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rules = len(pol.Rules)
		closure = rep.Closure
	}
	b.ReportMetric(closure, "closure")
	b.ReportMetric(float64(rules), "rules")
}
