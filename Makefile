# Tier-1 loop for the ContainerLeaks reproduction. `make check` is what CI
# runs: formatting, vet, build, and the full test suite under the race
# detector (the determinism contract in ARCHITECTURE.md is enforced by
# differential tests + -race together). `make bench` runs the
# serial/parallel benchmark pairs once each so the fan-out speedup is
# measured, not asserted.

GO ?= go

.PHONY: check fmt vet build test race bench bench-full clean

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serial-vs-parallel pairs from README.md's Performance section.
# -benchtime=1x keeps this cheap enough for CI; drop it for stable numbers.
bench:
	$(GO) test -run '^$$' -bench \
		'^(BenchmarkTable1LeakScan|BenchmarkTable1LeakScanParallel|BenchmarkFig3Sweep|BenchmarkFig3SweepParallel)$$' \
		-benchtime=1x .

# Every table and figure of the paper's evaluation as benchmarks.
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean ./...
