# Tier-1 loop for the ContainerLeaks reproduction. `make check` is what CI
# runs: formatting, vet, build, and the full test suite under the race
# detector (the determinism contract in ARCHITECTURE.md is enforced by
# differential tests + -race together). `make bench` runs the
# serial/parallel benchmark pairs once each so the fan-out speedup is
# measured, not asserted.

GO ?= go

.PHONY: check lint fmt vet build test race bench bench-full bench-json bench-guard profile chaos chaos-sweep clean

check: fmt vet build race

# Static gate only (no build/test): what CI runs as a separate fast step.
lint: fmt vet

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos smoke: the three pipelines under deterministic fault injection at
# the paper-scale 2% rate with a fixed seed. Must complete and keep shape
# (Table I renders, synergistic trials land, max ξ < 0.05); the sweep grid
# in EXPERIMENTS.md is the full version.
chaos:
	$(GO) run ./cmd/leakscan -table1 -chaos 0.02 -chaosseed 1
	$(GO) run ./cmd/powersim -fig3 -chaos 0.02 -chaosseed 1
	$(GO) run ./cmd/defensebench -fig8 -chaos 0.02 -chaosseed 1

# Full fault-rate degradation grid (detector / attack / defense).
chaos-sweep:
	$(GO) run ./cmd/defensebench -chaossweep -j 4

# The serial-vs-parallel pairs from README.md's Performance section, plus
# the cold-vs-incremental recurring-scan pair (the epoch engine's speedup).
# -benchtime=1x keeps this cheap enough for CI; drop it for stable numbers.
# Note the incremental variant needs >1 iteration to hit the engine cache,
# so it runs at -benchtime=10x in the measured pair below — and the Fig3
# sweep pair likewise: its first iteration builds and captures the world
# pool, later iterations restore snapshots instead of rebuilding, so 10
# iterations measure the steady state the CLIs and leaksd actually run.
bench:
	$(GO) test -run '^$$' -bench \
		'^(BenchmarkTable1LeakScan|BenchmarkTable1LeakScanParallel)$$' \
		-benchtime=1x .
	$(GO) test -run '^$$' -bench '^(BenchmarkFig3Sweep|BenchmarkFig3SweepParallel)$$' -benchtime=10x .
	$(GO) test -run '^$$' -bench '^BenchmarkRecurringScan(Cold|Incremental)$$' -benchtime=10x .
	$(GO) test -run '^$$' -bench '^BenchmarkMatrixSweep(Cold|Incremental)$$' -benchtime=10x .

# Every table and figure of the paper's evaluation as benchmarks.
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable benchmark report: the serial/parallel pairs, the
# cold/incremental recurring-scan pair, the cold/incremental runtime-
# matrix pair (nine target worlds per sweep — the MatrixSession reuse
# win), the /v1 serving benchmarks (cache-hit, 304, cold render, loadgen
# p99/req/s), the cluster scaling curve (coordinator fan-out at 1/2/4
# workers), and the policy-synthesis pipeline (mine + synthesize +
# verify on CC1), converted to JSON by internal/tools/benchjson and
# archived by CI as BENCH_PR10.json (earlier PRs' reports stay committed
# as history). The Fig3 sweep, recurring, and matrix pairs run 10
# iterations so their steady state dominates ns/op (the sweeps restore
# pooled world snapshots after the first iteration instead of
# rebuilding); the serving hit/load benchmarks run 200k iterations so
# the steady-state cache path dominates (the cold render runs fewer —
# it is three orders of magnitude slower per op); the cluster benchmark
# runs 5 full fleet scans per worker count; the policy pipeline runs 10
# full synthesis+verification passes.
bench-json:
	{ $(GO) test -run '^$$' -bench \
		'^(BenchmarkTable1LeakScan|BenchmarkTable1LeakScanParallel)$$' \
		-benchtime=1x -benchmem . && \
	$(GO) test -run '^$$' -bench '^(BenchmarkFig3Sweep|BenchmarkFig3SweepParallel)$$' \
		-benchtime=10x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkRecurringScan(Cold|Incremental)$$' \
		-benchtime=10x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkMatrixSweep(Cold|Incremental)$$' \
		-benchtime=10x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkV1ResultsHit(304)?$$|^BenchmarkServingLoad$$' \
		-benchtime=200000x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkV1ResultsCold$$' \
		-benchtime=2000x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkClusterFleet$$' \
		-benchtime=5x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkPolicySynthesis$$' \
		-benchtime=10x -benchmem . ; } | $(GO) run ./internal/tools/benchjson -o BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# Benchmark-regression gates against the committed BENCH_PR10.json
# baseline: Fig3Sweep wall time AND allocations (the compute path — the
# time gate pins the snapshot-pool win, the alloc gate the SoA/zero-alloc
# render work; 25% time headroom absorbs CI timer noise over the
# 10-iteration amortized run), the /v1 cache-hit zero-allocation contract
# (max-regress 0 — one allocation fails), the serving p99 (generous 50%
# headroom; CI hosts are noisy timers but a cache-path regression is
# 10x, not 1.5x), the policy-synthesis allocation budget (the POST
# /v1/policies cost), and the warm matrix-sweep allocation budget (the
# session-reuse path leaksd's kind=matrix scans ride). One-sided —
# improvements always pass; refresh the baseline with `make bench-json`
# when an optimization lands.
bench-guard:
	{ $(GO) test -run '^$$' -bench '^BenchmarkFig3Sweep$$' -benchtime=10x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkV1ResultsHit(304)?$$|^BenchmarkServingLoad$$' \
		-benchtime=200000x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkMatrixSweepIncremental$$' \
		-benchtime=10x -benchmem . && \
	$(GO) test -run '^$$' -bench '^BenchmarkPolicySynthesis$$' \
		-benchtime=10x -benchmem . ; } \
		| $(GO) run ./internal/tools/benchguard -baseline BENCH_PR10.json \
			-gate 'BenchmarkFig3Sweep:ns/op:0.25' \
			-gate 'BenchmarkFig3Sweep:allocs/op:0.10' \
			-gate 'BenchmarkV1ResultsHit:allocs/op:0' \
			-gate 'BenchmarkV1ResultsHit304:allocs/op:0' \
			-gate 'BenchmarkServingLoad:p99-ns:0.50' \
			-gate 'BenchmarkMatrixSweepIncremental:allocs/op:0.10' \
			-gate 'BenchmarkPolicySynthesis:allocs/op:0.10'

# Profile Fig. 3 — the substrate's hottest experiment (the attacker monitor
# sampling loop over the sharded tick pipeline) — and print the top-10 CPU
# and allocation consumers. The same -cpuprofile/-memprofile flags exist on
# leakscan, defensebench, and leaksd for profiling any other workload.
profile:
	@mkdir -p bin
	$(GO) build -o bin/powersim ./cmd/powersim
	./bin/powersim -fig3 -cpuprofile fig3.cpu.pprof -memprofile fig3.mem.pprof > /dev/null
	$(GO) tool pprof -top -nodecount=10 bin/powersim fig3.cpu.pprof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space bin/powersim fig3.mem.pprof

clean:
	$(GO) clean ./...
