// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation studies called out in DESIGN.md. Each
// benchmark runs the corresponding experiment end to end and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Absolute wattages come from the
// simulated substrate; the shape comparisons against the paper are recorded
// in EXPERIMENTS.md.
package repro

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
)

// benchTable1 runs Table I at a fixed worker count; the serial/parallel
// benchmark pair below measures — rather than asserts — the fan-out
// speedup (see README.md's Performance section).
func benchTable1(b *testing.B, workers int) {
	var available int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1Workers(workers)
		if err != nil {
			b.Fatal(err)
		}
		available = r.Available("local")
	}
	b.ReportMetric(float64(available), "local-channels-●")
}

func BenchmarkTable1LeakScan(b *testing.B)         { benchTable1(b, 1) }
func BenchmarkTable1LeakScanParallel(b *testing.B) { benchTable1(b, 0) }

// The cold/incremental pair measures what the epoch-based engine buys a
// recurring leaksd scan: the cold variant rebuilds the testbed world and
// re-renders every pseudo-file per iteration (exactly what each scheduler
// tick cost before the engine existed); the incremental variant reuses one
// InspectSession, so each iteration after the first is served from the
// engine's finding cache with zero re-renders. Same provider, same seed,
// byte-identical output — the ratio is the recurring-scan speedup reported
// in README.md's Performance section.
func BenchmarkRecurringScanCold(b *testing.B) {
	p := cloud.LocalTestbed()
	var leaking int
	for i := 0; i < b.N; i++ {
		in, err := experiments.InspectProviderSeeded(p, chaos.Spec{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		leaking = countAvailable(in)
	}
	b.ReportMetric(float64(leaking), "local-channels-●")
}

func BenchmarkRecurringScanIncremental(b *testing.B) {
	s, err := experiments.NewInspectSession(cloud.LocalTestbed(), chaos.Spec{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	var leaking int
	for i := 0; i < b.N; i++ {
		leaking = countAvailable(s.Inspect(1))
	}
	st := s.EngineStats()
	b.ReportMetric(float64(leaking), "local-channels-●")
	b.ReportMetric(float64(st.FindingHits), "finding-hits")
}

// The matrix pair is the recurring-scan pair scaled to the runtime matrix:
// the cold variant rebuilds all nine target worlds (five clouds + four
// sandboxed runtimes) and re-renders every pseudo-file per iteration; the
// incremental variant holds one MatrixSession, so each sweep after the
// first is served from the per-target engine caches. Byte-identical output
// either way — the ratio is what leaksd's pooled kind=matrix scans save.
func BenchmarkMatrixSweepCold(b *testing.B) {
	var avail int
	for i := 0; i < b.N; i++ {
		r, err := experiments.MatrixSweepWorkers(1)
		if err != nil {
			b.Fatal(err)
		}
		avail = r.Available("gvisor")
	}
	b.ReportMetric(float64(avail), "gvisor-channels-●")
}

func BenchmarkMatrixSweepIncremental(b *testing.B) {
	ms, err := experiments.NewMatrixSession(chaos.Spec{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	var avail int
	for i := 0; i < b.N; i++ {
		avail = ms.Sweep(1).Available("gvisor")
	}
	b.ReportMetric(float64(avail), "gvisor-channels-●")
}

func countAvailable(in experiments.CloudInspection) int {
	n := 0
	for _, r := range in.Reports {
		if r.Availability == core.Available {
			n++
		}
	}
	return n
}

func BenchmarkTable2ChannelRanking(b *testing.B) {
	var varying int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		varying = 0
		for _, a := range r.Assessments {
			if a.Varying {
				varying++
			}
		}
	}
	b.ReportMetric(float64(varying), "V-channels")
}

func BenchmarkFig2WeekTrace(b *testing.B) {
	var swing, peak float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(7)
		swing, peak = r.SwingPct, r.PeakW
	}
	b.ReportMetric(swing, "swing-%")
	b.ReportMetric(peak, "peak-W")
}

func BenchmarkFig3SynergisticVsPeriodic(b *testing.B) {
	var synPeak, perPeak float64
	var synTrials, perTrials int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		synPeak, perPeak = r.Synergistic.PeakW, r.Periodic.PeakW
		synTrials, perTrials = r.Synergistic.Trials, r.Periodic.Trials
	}
	b.ReportMetric(synPeak, "syn-peak-W")
	b.ReportMetric(perPeak, "per-peak-W")
	b.ReportMetric(float64(synTrials), "syn-trials")
	b.ReportMetric(float64(perTrials), "per-trials")
}

// benchFig3Sweep is the second serial/parallel pair: five seeded
// share-nothing worlds per iteration, fanned out at workers=0 (GOMAXPROCS).
func benchFig3Sweep(b *testing.B, workers int) {
	var wins, ties int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3SweepWorkers(5, workers)
		if err != nil {
			b.Fatal(err)
		}
		wins, ties = r.SynWins, r.Ties
	}
	b.ReportMetric(float64(wins), "syn-wins")
	b.ReportMetric(float64(ties), "ties")
}

func BenchmarkFig3Sweep(b *testing.B)         { benchFig3Sweep(b, 1) }
func BenchmarkFig3SweepParallel(b *testing.B) { benchFig3Sweep(b, 0) }

func BenchmarkFig4CoResidentAttack(b *testing.B) {
	var perContainer float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		perContainer = (r.StepWatts[3] - r.StepWatts[0]) / 3
	}
	b.ReportMetric(perContainer, "W-per-container")
}

func BenchmarkFig6CoreEnergyModel(b *testing.B) {
	var worstR2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		worstR2 = 1
		for _, l := range r.Lines {
			if l.R2 < worstR2 {
				worstR2 = l.R2
			}
		}
	}
	b.ReportMetric(worstR2, "worst-R²")
}

func BenchmarkFig7DRAMEnergyModel(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		r2 = r.Line.R2
	}
	b.ReportMetric(r2, "R²")
}

func BenchmarkFig8ModelAccuracy(b *testing.B) {
	var maxXi float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		maxXi = r.MaxXi
	}
	b.ReportMetric(maxXi, "max-ξ")
}

func BenchmarkFig9Transparency(b *testing.B) {
	var idleW, busyW float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		idleW = avg(r.IdleW[r.WorkloadStart+2:])
		busyW = avg(r.BusyW[r.WorkloadStart+2:])
	}
	b.ReportMetric(idleW, "idle-container-W")
	b.ReportMetric(busyW, "busy-container-W")
}

func avg(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func BenchmarkTable3UnixBench(b *testing.B) {
	var over1, over8 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table3()
		over1, over8 = r.IndexOver1, r.IndexOver8
	}
	b.ReportMetric(over1, "overhead-1copy-%")
	b.ReportMetric(over8, "overhead-8copy-%")
}

func BenchmarkAblationCalibration(b *testing.B) {
	var worstOn, worstOff float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCalibration()
		if err != nil {
			b.Fatal(err)
		}
		worstOn, worstOff = 0, 0
		for _, row := range r.Rows {
			if row.XiCalibrated > worstOn {
				worstOn = row.XiCalibrated
			}
			if row.XiUncalibrated > worstOff {
				worstOff = row.XiUncalibrated
			}
		}
	}
	b.ReportMetric(worstOn, "ξ-calibrated")
	b.ReportMetric(worstOff, "ξ-uncalibrated")
}

func BenchmarkAblationModelFeatures(b *testing.B) {
	var fullR2, naiveR2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationModelFeatures()
		if err != nil {
			b.Fatal(err)
		}
		fullR2, naiveR2 = r.FullR2, r.NaiveR2
	}
	b.ReportMetric(fullR2, "full-R²")
	b.ReportMetric(naiveR2, "naive-R²")
}

func BenchmarkAblationStrategyCost(b *testing.B) {
	var synBill float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStrategyCost()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Strategy == "synergistic" {
				synBill = r.BillUSD
			}
		}
	}
	b.ReportMetric(synBill, "syn-bill-$")
}

func BenchmarkAblationCrestThreshold(b *testing.B) {
	var bestPeak float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationCrestThreshold()
		if err != nil {
			b.Fatal(err)
		}
		bestPeak = 0
		for _, p := range points {
			if p.PeakW > bestPeak {
				bestPeak = p.PeakW
			}
		}
	}
	b.ReportMetric(bestPeak, "best-peak-W")
}

func BenchmarkDiscovery(b *testing.B) {
	var novel int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Discovery()
		if err != nil {
			b.Fatal(err)
		}
		novel = len(r.Findings)
	}
	b.ReportMetric(float64(novel), "novel-leaks")
}

func BenchmarkCovertChannels(b *testing.B) {
	var defendedPowerBER float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.CovertSurvey()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Hardening == experiments.DefendedHost && row.Signal.String() == "power" {
				defendedPowerBER = row.BER
			}
		}
	}
	b.ReportMetric(defendedPowerBER, "defended-power-BER")
}

func BenchmarkDefendedAttack(b *testing.B) {
	var signalRange float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.DefendedAttack()
		if err != nil {
			b.Fatal(err)
		}
		signalRange = r.DefendedSignalRangeW
	}
	b.ReportMetric(signalRange, "defended-signal-range-W")
}

func BenchmarkAttackDetection(b *testing.B) {
	var attackerAlignment float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Detection()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Scores {
			if s.Tenant == "mallory" {
				attackerAlignment = s.CrestAlignment
			}
		}
	}
	b.ReportMetric(attackerAlignment, "attacker-crest-alignment")
}

func BenchmarkPowerBilling(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PowerBilling()
		if err != nil {
			b.Fatal(err)
		}
		var hi, lo float64
		for _, row := range r.Rows {
			if row.CoreHours > 3 { // the two busy tenants
				if hi == 0 || row.EnergyWh > hi {
					hi = row.EnergyWh
				}
				if lo == 0 || row.EnergyWh < lo {
					lo = row.EnergyWh
				}
			}
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "energy-spread-×")
}

func BenchmarkAblationDefenseStages(b *testing.B) {
	var s2Leaks int
	for i := 0; i < b.N; i++ {
		outcomes, err := experiments.AblationDefenseStages()
		if err != nil {
			b.Fatal(err)
		}
		s2Leaks = outcomes[2].LeakingChannels
	}
	b.ReportMetric(float64(s2Leaks), "stage2-residual-●")
}
