// Serving-path benchmarks: the /v1 read hot loop over the epoch-keyed
// response cache (internal/service/respcache). BenchmarkV1ResultsHit is
// the contract benchmark — `make bench-guard` gates it at 0 allocs/op —
// and BenchmarkServingLoad reports the loadgen-driven p99 and sustained
// req/s archived in BENCH_PR8.json. State is synthetic (fabricated
// inspect results through the scheduler's runner hook), so these measure
// serving, not scan compute; docs/SERVING.md records the expected numbers.
package repro

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/service"
)

// newServingHandler builds a leaksd handler over deterministic synthetic
// state: one fabricated inspect result per provider.
func newServingHandler(b *testing.B, disableCache bool) http.Handler {
	b.Helper()
	sched := service.New(service.Config{Workers: 2}, nil)
	sched.SetRunner(func(_ context.Context, req service.ScanRequest) (*service.ScanResult, error) {
		glyphs := []string{core.Available.String(), core.PartiallyAvailable.String(), core.Unavailable.String()}
		channels := service.Channels()
		verdicts := make([]service.Verdict, len(channels))
		for i, ch := range channels {
			verdicts[i] = service.Verdict{Provider: req.Provider, Channel: ch.Name, Availability: glyphs[i%len(glyphs)]}
		}
		return &service.ScanResult{Request: req, Rendered: "synthetic", Verdicts: verdicts}, nil
	})
	sched.Start()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sched.Shutdown(ctx)
	})
	for _, name := range service.ProviderNames() {
		if _, err := sched.Submit(service.ScanRequest{Kind: service.KindInspect, Provider: name}); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, j := range sched.Jobs() {
			if !j.Terminal() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("seed scans did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	return service.NewHandler(service.APIConfig{
		Scheduler:            sched,
		Version:              "bench",
		DisableResponseCache: disableCache,
	})
}

// servingWriter is a reusable ResponseWriter whose header map persists
// across requests, the way a keep-alive connection's would.
type servingWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *servingWriter) Header() http.Header  { return w.h }
func (w *servingWriter) WriteHeader(code int) { w.code = code }
func (w *servingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// benchV1 drives one endpoint with a reusable request/writer pair.
// revalidate sends If-None-Match with the warm response's ETag (the 304
// path); disableCache measures the cold render.
func benchV1(b *testing.B, target string, revalidate, disableCache bool) {
	h := newServingHandler(b, disableCache)
	req := httptest.NewRequest(http.MethodGet, target, nil)
	w := &servingWriter{h: make(http.Header)}
	h.ServeHTTP(w, req) // warm: populates the cache and the header map
	if w.code != http.StatusOK {
		b.Fatalf("warm request: status %d", w.code)
	}
	if revalidate {
		req.Header.Set("If-None-Match", w.h.Get("Etag"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code, w.n = 0, 0
		h.ServeHTTP(w, req)
	}
	b.StopTimer()
	want := http.StatusOK
	if revalidate {
		want = http.StatusNotModified
	}
	if w.code != want {
		b.Fatalf("status %d, want %d", w.code, want)
	}
}

// BenchmarkV1ResultsHit is the zero-allocation contract: a steady-state
// /v1/results cache hit must not allocate (gated at 0 allocs/op by
// `make bench-guard`).
func BenchmarkV1ResultsHit(b *testing.B) { benchV1(b, "/v1/results?limit=50", false, false) }

// BenchmarkV1ResultsHit304 is the revalidation path: matching
// If-None-Match answers 304 without touching the body.
func BenchmarkV1ResultsHit304(b *testing.B) { benchV1(b, "/v1/results?limit=50", true, false) }

// BenchmarkV1ResultsCold renders every response fresh (-respcache=false):
// the baseline the cache is measured against.
func BenchmarkV1ResultsCold(b *testing.B) { benchV1(b, "/v1/results?limit=50", false, true) }

// BenchmarkServingLoad drives the default leaksload mix closed-loop
// through internal/loadgen and reports the measured p99 and sustained
// throughput; `make bench-guard` gates the p99.
func BenchmarkServingLoad(b *testing.B) {
	h := newServingHandler(b, false)
	cfg := loadgen.Config{
		Mix: []loadgen.Endpoint{
			{Path: "/v1/results", Weight: 6},
			{Path: "/v1/scans", Weight: 2},
			{Path: "/v1/channels", Weight: 1},
			{Path: "/v1/providers", Weight: 1},
			{Path: "/v1/engine", Weight: 1},
			{Path: "/v1/version", Weight: 1},
		},
		Requests:    b.N,
		Concurrency: 4,
		Seed:        1,
	}
	b.ResetTimer()
	res, err := loadgen.Run(context.Background(), h, cfg)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Other > 0 {
		b.Fatalf("%d responses were neither 200 nor 304: %s", res.Other, res)
	}
	b.ReportMetric(float64(res.P99), "p99-ns")
	b.ReportMetric(res.RPS, "req/s")
}
