// Covert channel demo (Section III-C): two co-resident containers with no
// network path exchange a secret through the host's leaked power,
// utilization, and temperature channels — then the same attempt on
// progressively hardened hosts. The power namespace (stage 2) kills the
// RAPL channel; namespacing the performance statistics (stage 3, the
// paper's proposed future work) kills the utilization channel; the
// temperature channel survives everything, because nothing partitions a
// physical sensor (Section VII-B).
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/covert"
	"repro/internal/defense"
	"repro/internal/powerns"
)

// message is the secret to smuggle, as bits.
var message = []byte("leak")

func bitsOf(data []byte) []bool {
	var bits []bool
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b>>uint(i)&1 == 1)
		}
	}
	return bits
}

func bytesOf(bits []bool) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if bits[i+j] {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}

func run(level int) {
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 1, Seed: 99, Defended: level >= 1,
		Benign: cloud.BenignConfig{BaseUtil: 0.05, PeakUtil: 0.08, FlashCrowdPerDay: 0.0001},
	})
	srv := dc.Racks[0].Servers[0]
	if level >= 2 {
		defense.ApplyStatisticsFixes(srv.FS)
	}
	if level >= 3 {
		powerns.NewThermal(srv.PowerNS).InstallThermal(srv.FS)
	}
	sender := srv.Runtime.Create("sender")
	receiver := srv.Runtime.Create("receiver")
	if srv.PowerNS != nil {
		srv.PowerNS.Register(sender.CgroupPath)
		srv.PowerNS.Register(receiver.CgroupPath)
	}
	step := func() { dc.Clock.Advance(1) }

	host := [4]string{
		"stock host",
		"DEFENDED host (stage-2 fixes + power namespace)",
		"FULLY HARDENED host (+ stage-3 statistics namespacing)",
		"THERMAL-HARDENED host (+ thermal namespace PoC)",
	}[level]
	fmt.Printf("\n=== %s ===\n", host)

	for _, cfg := range []covert.Config{
		{Signal: covert.PowerSignal, SymbolSeconds: 2, Core: 2, LoadCores: 4},
		{Signal: covert.UtilSignal, SymbolSeconds: 2, Core: 2, LoadCores: 4},
		{Signal: covert.TempSignal, SymbolSeconds: 20, Core: 2, LoadCores: 2},
	} {
		transmitOne(cfg, sender, receiver, step)
	}
}

func transmitOne(cfg covert.Config, sender *container.Container, receiver *container.Container, step func()) {
	link, err := covert.NewLink(cfg, sender, receiver, step)
	if err != nil {
		log.Fatalf("link: %v", err)
	}
	sent := bitsOf(message)
	got, err := link.Transmit(sent)
	if err != nil {
		log.Fatalf("transmit: %v", err)
	}
	decoded := bytesOf(got)
	ber := covert.BitErrorRate(sent, got)
	fmt.Printf("%-12s %.3f b/s  BER %.3f  received: %q\n",
		cfg.Signal.String()+":", covert.ThroughputBPS(cfg), ber, string(decoded))
}

func main() {
	fmt.Printf("smuggling %q between co-resident containers with no shared IPC or network\n", string(message))
	for level := 0; level < 4; level++ {
		run(level)
	}
}
