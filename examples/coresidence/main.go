// Co-residence detection: the Section III-C playbook. A tenant launches
// instances into a multi-server cloud and determines which of its
// containers share a physical host — using boot_id comparison, timer-list
// signature implants, uptime matching, and synchronized MemFree traces —
// then uses boot-time proximity to find rack neighbours.
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/coresidence"
)

func main() {
	// A small cloud: 2 racks × 4 servers. The tenant cannot see placement.
	dc := cloud.New(cloud.Config{Racks: 2, ServersPerRack: 4, Seed: 7})

	// Launch five instances; the scheduler scatters them.
	var placed []*container.Container
	for i := 0; i < 5; i++ {
		_, c, err := dc.Launch("tenant-a", fmt.Sprintf("probe-%d", i), 1)
		if err != nil {
			log.Fatalf("launch: %v", err)
		}
		placed = append(placed, c)
	}
	dc.Clock.Advance(1)

	fmt.Println("pairwise co-residence verdicts (channel: boot_id):")
	for i := 0; i < len(placed); i++ {
		for j := i + 1; j < len(placed); j++ {
			v, err := coresidence.ByBootID(placed[i], placed[j])
			if err != nil {
				log.Fatalf("boot_id check: %v", err)
			}
			if !v.CoResident {
				continue
			}
			fmt.Printf("  instance %d and %d share a host (%s)\n", i, j, v.Evidence)

			// Confirm through an independent channel: implant a crafted
			// timer task name and search the other container's view.
			sig := fmt.Sprintf("sig-%d-%d", i, j)
			v2, err := coresidence.ByTimerSignature(placed[i], placed[j], sig)
			if err != nil {
				log.Fatalf("timer check: %v", err)
			}
			fmt.Printf("    confirmed via /proc/timer_list: %v\n", v2.CoResident)

			// And through uptime equality at the same instant.
			v3, err := coresidence.ByUptime(placed[i], placed[j], 0.5)
			if err != nil {
				log.Fatalf("uptime check: %v", err)
			}
			fmt.Printf("    confirmed via /proc/uptime: %v (%s)\n", v3.CoResident, v3.Evidence)
		}
	}

	// The trace-matching method works even where static identifiers are
	// masked: 30 synchronized MemFree snapshots, one per second.
	fmt.Println("\nMemFree trace matching (first pair):")
	v, err := coresidence.ByMemFreeTrace(placed[0], placed[1],
		func() { dc.Clock.Advance(1) }, 30)
	if err != nil {
		log.Fatalf("trace check: %v", err)
	}
	fmt.Printf("  instances 0,1 co-resident: %v (%s)\n", v.CoResident, v.Evidence)

	// Rack proximity from boot wall-clocks (Section IV-C): servers racked
	// together were powered on together.
	fmt.Println("\nrack proximity (btime within one hour):")
	for j := 1; j < len(placed); j++ {
		v, err := coresidence.RackProximity(placed[0], placed[j], 3600)
		if err != nil {
			log.Fatalf("proximity: %v", err)
		}
		fmt.Printf("  instance 0 vs %d: same rack likely = %v (%s)\n", j, v.CoResident, v.Evidence)
	}
}
