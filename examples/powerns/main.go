// Power-based namespace defense end to end (Section V): train the
// regression power model on the modeling benchmarks, deploy the two-stage
// defense on a host, and demonstrate that (a) a spy container can no longer
// observe co-tenant power, (b) the spy still gets accurate accounting of
// its OWN energy, and (c) the synergistic attack's monitor goes blind.
package main

import (
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func main() {
	// Train the Formula 2 model (idle loop, Prime, libquantum, stress).
	model, samples, err := powerns.Train(powerns.TrainOptions{Seed: 42})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("trained on %d samples: core R²=%.4f, DRAM R²=%.4f, α=%.1f W, λ=%.1f W\n",
		len(samples), model.Core.R2, model.DRAM.R2, model.Core.Intercept, model.Lambda)

	// A host with a busy victim and a spying co-tenant.
	k := kernel.New(kernel.Options{Hostname: "defended", Seed: 5})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	victim := rt.Create("victim")
	spy := rt.Create("spy")

	// Before the defense: the spy's RAPL monitor tracks host power.
	mon, err := attack.NewPowerMonitor(spy)
	if err != nil {
		log.Fatalf("monitor: %v", err)
	}
	k.Tick(1, 1)
	if _, err := mon.Sample(1); err != nil && !errors.Is(err, attack.ErrPrimed) {
		log.Fatalf("sample: %v", err)
	}
	victim.Run(workload.Prime, 8)
	k.Tick(2, 1)
	w, err := mon.Sample(1)
	if err != nil {
		log.Fatalf("sample: %v", err)
	}
	fmt.Printf("\nbefore defense: spy observes host surge to %.0f W when the victim starts\n", w)

	// Deploy the two-stage defense: inspect → stage-1 masks (reported) →
	// stage-2 namespace fixes + power namespace.
	probe := rt.Create("inspection-probe")
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	reports := core.RollUp(core.TableIChannels(), core.CrossValidate(host, probe.Mount()))
	if err := rt.Destroy(probe.ID); err != nil {
		log.Fatalf("destroy probe: %v", err)
	}
	d := defense.Deploy(fs, reports, model)
	d.PowerNS.Register(victim.CgroupPath)
	d.PowerNS.Register(spy.CgroupPath)
	fmt.Printf("\ndeployed: %d stage-1 mask rules generated; stage-2 namespace fixes applied\n", len(d.Stage1))

	// After the defense: the spy reads only its own (idle) energy.
	readUJ := func(c *container.Container) float64 {
		raw, err := c.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
		if err != nil {
			log.Fatalf("read energy: %v", err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			log.Fatalf("parse energy: %v", err)
		}
		return v
	}
	s0, v0 := readUJ(spy), readUJ(victim)
	for t := 3; t <= 32; t++ {
		k.Tick(float64(t), 1)
	}
	s1, v1 := readUJ(spy), readUJ(victim)
	fmt.Printf("after defense over 30 busy seconds:\n")
	fmt.Printf("  victim's own view: %.1f W (its real consumption)\n", (v1-v0)/1e6/30)
	fmt.Printf("  spy's view:        %.1f W (only its own idle share — the surge is invisible)\n",
		(s1-s0)/1e6/30)

	// The defense also enables per-container power metering for billing.
	vEnergy, err := d.PowerNS.Meter(victim.CgroupPath)
	if err != nil {
		log.Fatalf("meter: %v", err)
	}
	fmt.Printf("\nbilling hook: victim consumed %.1f J attributable energy so far\n", vEnergy/1e6)
}
