// Quickstart: stand up one simulated host with Docker-style containers,
// read a few pseudo-files from inside a container, and run the leakage
// detector to see which channels expose host state — the 60-second tour of
// the reproduction's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func main() {
	// 1. Boot a host: a simulated Linux 4.7 kernel with 8 cores, RAPL and
	// coretemp sensors, and the full /proc + /sys tree.
	k := kernel.New(kernel.Options{Hostname: "demo-host", Seed: 1})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	docker := container.NewRuntime(k, fs, container.DockerProfile())

	// 2. Start two tenant containers; one runs a compute workload.
	attacker := docker.Create("attacker")
	victim := docker.Create("victim")
	victim.Run(workload.Prime, 4)

	// 3. Advance simulated time: the kernel schedules, meters power, and
	// updates every accounting structure.
	for t := 1; t <= 30; t++ {
		k.Tick(float64(t), 1)
	}

	// 4. Read leaked host state from inside the attacker's container.
	for _, path := range []string{
		"/proc/loadavg",
		"/proc/uptime",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
	} {
		content, err := attacker.ReadFile(path)
		if err != nil {
			log.Fatalf("read %s: %v", path, err)
		}
		fmt.Printf("%-50s -> %s", path, firstLine(content))
	}

	// 5. Run the paper's cross-validation detector: compare the container
	// view against the host view for every pseudo-file.
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	findings := core.CrossValidate(host, attacker.Mount())
	var leaks, namespaced int
	for _, f := range findings {
		switch f.Status {
		case core.Identical:
			leaks++
		case core.Namespaced:
			namespaced++
		}
	}
	fmt.Printf("\ndetector: %d files leak host state, %d are properly namespaced (of %d total)\n",
		leaks, namespaced, len(findings))

	// 6. Roll findings up into the paper's Table I channels.
	for _, rep := range core.RollUp(core.TableIChannels(), findings) {
		fmt.Printf("  %s %s\n", rep.Availability, rep.Channel.Name)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i+1]
		}
	}
	return s + "\n"
}
