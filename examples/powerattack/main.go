// Synergistic power attack end to end (Section IV): orchestrate container
// placement onto one rack using the leakage channels, monitor host power
// through the leaked RAPL counter at near-zero cost, superimpose
// power-virus bursts on benign crests, and compare against the blind
// periodic baseline — including what each strategy costs under
// utilization-based billing.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/cloud"
	"repro/internal/workload"
)

func main() {
	build := func() (*cloud.Datacenter, *attack.AggregationResult) {
		dc := cloud.New(cloud.Config{
			Racks: 1, ServersPerRack: 8, CoresPerServer: 16, Seed: 1359,
			BreakerRatedW: 1980,
			Benign:        cloud.BenignConfig{FlashCrowdPerDay: 48},
		})
		// Fast-forward to the evening demand ramp.
		dc.Clock.Run(13*3600, 30)

		// Orchestration: spread attack containers across distinct hosts of
		// ONE rack, located purely through leaked boot ids and boot-time
		// proximity.
		agg, err := attack.SpreadAcrossRack(dc, "mallory", 6, 4, 3600, 600)
		if err != nil {
			log.Fatalf("orchestration: %v", err)
		}
		fmt.Printf("orchestration: %d launches to place 6 containers on 6 rack-mates\n", agg.Launched)
		return dc, &agg
	}

	// Strategy 1: synergistic — monitor, then strike at crests.
	dc, agg := build()
	cfg := attack.DefaultConfig()
	cfg.BurstSeconds = 150    // long enough for an over-threshold spike to heat the breaker
	cfg.CoresPerContainer = 2 // stay below host saturation so bursts add on top of crests
	cfg.WarmupSeconds = 60    // the monitor already observed during orchestration
	cfg.Profile = workload.GeneratePowerVirus(
		dc.Racks[0].Servers[0].Kernel.Meter().Config(),
		workload.DefaultVirusConstraints(), 300, 1)
	syn, err := attack.RunSynergistic(dc, agg.Kept[0].Server.Rack, agg.Containers(), cfg, 3000)
	if err != nil {
		log.Fatalf("synergistic: %v", err)
	}
	synBill := dc.Billing().TenantBill("mallory")

	// Strategy 2: periodic bursts every 300 s, same world.
	dc2, agg2 := build()
	per := attack.RunPeriodic(dc2, agg2.Kept[0].Server.Rack, agg2.Containers(), cfg, 3000, 300)
	perBill := dc2.Billing().TenantBill("mallory")

	report := func(name string, r attack.Result, bill float64) {
		outage := "no outage"
		if r.BreakerTripped {
			outage = fmt.Sprintf("OUTAGE at t=%.0f s after %.0f metered core-s", r.TrippedAtS, r.CoreSecondsAtTrip)
		}
		fmt.Printf("%-12s peak %.0f W, %d trials, %.0f attack core-s, bill $%.4f — %s\n",
			name+":", r.PeakW, r.Trials, r.AttackCoreSeconds, bill, outage)
	}
	fmt.Println()
	report("synergistic", syn, synBill)
	report("periodic", per, perBill)
	fmt.Println("(the monitor itself is a file read per second: effectively free)")
	fmt.Println("\nnote: blind periodic bursts sometimes land on a crest by luck, but they always")
	fmt.Println("spend more metered budget and run more detectable bursts for the same effect —")
	fmt.Println("the paper's Fig. 3 comparison, reproduced statistically by cmd/powersim -fig3.")
}
