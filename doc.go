// Package repro is a from-scratch, stdlib-only Go reproduction of
// "ContainerLeaks: Emerging Security Threats of Information Leakages in
// Container Clouds" (Gao, Gu, Kayaalp, Pendarakis, Wang — DSN 2017).
//
// The paper shows that Linux's incomplete namespacing leaks host-wide
// state into containers through procfs/sysfs, that the leaked RAPL power
// counter enables a synergistic power attack (power-virus bursts
// superimposed on benign power crests, located via co-residence
// detection), and that a power-based namespace — per-container energy
// accounting behind the unchanged RAPL interface — neutralizes the attack
// at trivial overhead. This repository rebuilds every system the paper
// touches as a deterministic simulated substrate, then implements the
// paper's actual contributions on top and regenerates its evaluation.
//
// # Layout
//
// The implementation lives under internal/, layered strictly bottom-up
// (see ARCHITECTURE.md for the dependency diagram and the concurrency &
// determinism contract):
//
//   - substrate: kernel, pseudofs, power, perfcount over the simclock
//     lockstep clock, with stats and workload as leaves;
//   - assembly: container (runtime, Docker/LXC profiles) and cloud
//     (racks, breakers, placement, billing, provider profiles CC1–CC5);
//   - contributions: core (the Fig. 1 cross-validation detector and
//     channel metrics), attack + coresidence (the synergistic power
//     attack), covert (channel survey), powerns + defense (the power
//     namespace and two-stage defense);
//   - experiments: one function per table/figure of the paper, each
//     returning a structured result with a String renderer; parallel
//     sweeps fan out via internal/parallel under a byte-identical
//     determinism guarantee.
//
// # Binaries
//
// Three commands under cmd/ print the paper's artifacts; each takes
// -j N to bound the worker pool for parallel sweeps (0 = GOMAXPROCS),
// with byte-identical output at any worker count:
//
//   - cmd/leakscan: Table I (channel availability per cloud), Table II
//     (U/V/M + entropy ranking), and -discover for leaking files beyond
//     the paper's registry;
//   - cmd/powersim: Fig. 2 (week-long datacenter trace), Fig. 3
//     (synergistic vs periodic attack, plus -fig3sweep seed statistics),
//     Fig. 4 (co-resident aggregation);
//   - cmd/defensebench: Figs. 6–9, Table III, the ablation studies, the
//     covert-channel survey, and operator-side attack detection.
//
// Worked examples live under examples/, and bench_test.go at this root
// regenerates every table and figure as benchmarks (go test -bench .),
// including the serial-vs-parallel pairs from README.md's Performance
// section.
//
// # Further reading
//
// DESIGN.md maps each simulated component to the real system it
// substitutes; EXPERIMENTS.md records paper-vs-measured results and
// which quantities were calibration targets; ARCHITECTURE.md documents
// the package layers, the lockstep time model, and the rules all
// concurrent code must follow.
package repro
