// Package repro is a from-scratch Go reproduction of "ContainerLeaks:
// Emerging Security Threats of Information Leakages in Container Clouds"
// (Gao, Gu, Kayaalp, Pendarakis, Wang — DSN 2017).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable tools under cmd/, worked examples under
// examples/, and the benchmark harness that regenerates every table and
// figure of the paper's evaluation in bench_test.go at this root.
package repro
