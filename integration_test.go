// Integration test: the paper's full narrative arc in one deterministic
// scenario — discover leaks, orchestrate co-residence, mount the
// synergistic power attack, trip a breaker, deploy the defense, and verify
// the same attack pipeline collapses.
package repro

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/coresidence"
	"repro/internal/workload"
)

func TestEndToEndPaperNarrative(t *testing.T) {
	benign := cloud.BenignConfig{
		FlashCrowdPerDay: 48, FlashMinS: 60, FlashMaxS: 240, SharedFlash: true,
	}

	// ---- Act I: an undefended cloud leaks everything. -------------------
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 4242,
		BreakerRatedW: 1040, Benign: benign,
	})
	srv := dc.Racks[0].Servers[0]
	probe := srv.Runtime.Create("probe")
	dc.Clock.Run(30, 1)

	findings := core.CrossValidate(srv.HostMount(), probe.Mount())
	leaks := 0
	for _, f := range findings {
		if f.Status == core.Identical {
			leaks++
		}
	}
	if leaks < 100 {
		t.Fatalf("act I: only %d leaking files on a stock host", leaks)
	}
	reports := core.RollUp(core.TableIChannels(), findings)
	for _, rep := range reports {
		if rep.Availability != core.Available {
			t.Fatalf("act I: channel %s not fully available", rep.Channel.Name)
		}
	}

	// ---- Act II: orchestrate and attack. -------------------------------
	dc.Clock.Run(16*3600, 30) // evening
	agg, err := attack.SpreadAcrossRack(dc, "mallory", 4, 4, 3600, 300)
	if err != nil {
		t.Fatalf("act II: orchestration: %v", err)
	}
	hosts := map[*cloud.Server]bool{}
	for _, p := range agg.Kept {
		hosts[p.Server] = true
	}
	if len(hosts) != 4 {
		t.Fatalf("act II: %d distinct hosts, want 4", len(hosts))
	}
	// Sanity: the attacker's own co-residence view agrees with reality.
	v, err := coresidence.ByBootID(agg.Containers()[0], agg.Containers()[1])
	if err != nil {
		t.Fatal(err)
	}
	if v.CoResident {
		t.Fatal("act II: spread containers claim co-residence")
	}

	cfg := attack.DefaultConfig()
	cfg.TriggerNearMax = 0.95
	cfg.WarmupSeconds = 600
	cfg.CooldownSeconds = 240
	cfg.BurstSeconds = 150
	cfg.CoresPerContainer = 6
	cfg.Profile = workload.GeneratePowerVirus(
		srv.Kernel.Meter().Config(), workload.DefaultVirusConstraints(), 200, 1)
	res, err := attack.RunSynergistic(dc, dc.Racks[0], agg.Containers(), cfg, 3000)
	if err != nil {
		t.Fatalf("act II: attack: %v", err)
	}
	if !res.BreakerTripped {
		t.Fatalf("act II: breaker survived (peak %.0f W of %.0f W rating)", res.PeakW, 1040.0)
	}
	for _, s := range dc.Racks[0].Servers {
		if !s.Down {
			t.Fatal("act II: servers survived the outage")
		}
	}

	// ---- Act III: the defended cloud resists. ---------------------------
	dcd := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 4242,
		BreakerRatedW: 1040, Benign: benign, Defended: true,
	})
	sd := dcd.Racks[0].Servers[0]
	probeD := sd.Runtime.Create("probe")
	sd.PowerNS.Register(probeD.CgroupPath)
	dcd.Clock.Run(30, 1)

	findingsD := core.CrossValidate(sd.HostMount(), probeD.Mount())
	byPath := map[string]core.FileStatus{}
	for _, f := range findingsD {
		byPath[f.Path] = f.Status
	}
	for _, path := range []string{
		"/proc/sys/kernel/random/boot_id", "/proc/timer_list",
		"/proc/sched_debug", "/proc/locks", "/proc/uptime",
		"/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
	} {
		if byPath[path] == core.Identical {
			t.Errorf("act III: %s still leaks on the defended fleet", path)
		}
	}

	// The attack pipeline degrades end to end: same campaign, breaker holds.
	dcd.Clock.Run(16*3600+30, 30)
	aggD, err := attack.SpreadAcrossRack(dcd, "mallory", 4, 4, 3600, 300)
	if err != nil {
		t.Fatalf("act III: orchestration: %v", err)
	}
	resD, err := attack.RunSynergistic(dcd, dcd.Racks[0], aggD.Containers(), cfg, 3000)
	if err != nil {
		t.Fatalf("act III: attack: %v", err)
	}
	if resD.BreakerTripped && resD.TrippedAtS < res.TrippedAtS {
		t.Fatalf("act III: defended outage came sooner (%.0f s) than undefended (%.0f s)",
			resD.TrippedAtS, res.TrippedAtS)
	}

	// And the attacker's monitor is provably blind: flat signal.
	mon, err := attack.NewPowerMonitor(aggD.Containers()[0])
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for i := 0; i < 30; i++ {
		dcd.Clock.Advance(1)
		w, err := mon.Sample(1)
		if err != nil && !errors.Is(err, attack.ErrPrimed) {
			t.Fatal(err)
		}
		if i == 1 {
			lo, hi = w, w
		} else if i > 1 {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
	}
	if hi-lo > 2 {
		t.Fatalf("act III: defended monitor still sees %.2f W of variation", hi-lo)
	}
}

func TestEndToEndMaskingStage(t *testing.T) {
	// Stage 1 alone (CC5-grade masking) already blocks the attack tooling,
	// at the cost of breaking monitoring apps — both sides of the paper's
	// trade-off, exercised through the public surfaces.
	p := cloud.CC5()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 2, Seed: 4343, Provider: &p})
	_, c, err := dc.Launch("tenant", "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attack.NewPowerMonitor(c); err == nil {
		t.Fatal("CC5 should block the RAPL monitor")
	}
	if _, err := c.ReadFile("/proc/uptime"); err == nil {
		t.Fatal("CC5 should mask uptime")
	}
	// But partial channels still leak *something* (the ◐ of Table I).
	stat, err := c.ReadFile("/proc/stat")
	if err != nil || !strings.HasPrefix(stat, "cpu ") {
		t.Fatalf("CC5 stat filter broken: %q err=%v", stat, err)
	}
}
