// Cluster scaling benchmarks: one fleet spec, N in-process workers on
// per-worker replicas, the real coordinator partitioning every scan. The
// sub-benchmarks differ only in worker count, so the workers=1 →
// workers=4 ns/op ratio is the cluster's scaling curve. On a multi-core
// host the curve is near-linear while shards outnumber workers
// (validation is per-container CPU work on independent engines); on a
// single-core CI host it is necessarily flat — and that flatness is
// itself the useful number, because it bounds the coordinator's whole
// overhead (partitioning, dispatch goroutines, heartbeats, merging) at
// the difference between the workers=1 and workers=4 lines. Archived in
// BENCH_PR8.json. Every iteration advances the observation tick, so each
// scan revalidates dirty subsystems through the epoch-delta path instead
// of replaying a warm cache.
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
)

// benchFleetContainers keeps total scan work identical across worker
// counts; benchShardSize fixes the partition layout (8 shards) so only
// the worker fleet varies between sub-benchmarks.
const (
	benchFleetContainers = 48
	benchShardSize       = 6
)

// TestClusterScaling is the wall-clock half of the scaling acceptance:
// a 4-worker cluster scan of a large fleet must beat the 1-worker scan
// by at least 2× on a host with the cores to show it. Opt-in
// (LEAKSD_CLUSTER_SCALE=1) because it needs ≥4 CPUs and seconds of
// compute — single-core CI measures the same topology via
// BenchmarkClusterFleet's overhead bound instead.
func TestClusterScaling(t *testing.T) {
	if os.Getenv("LEAKSD_CLUSTER_SCALE") == "" {
		t.Skip("set LEAKSD_CLUSTER_SCALE=1 to run the wall-clock scaling acceptance")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful scaling curve, have %d", runtime.GOMAXPROCS(0))
	}
	const containers = 512
	spec := cluster.Spec{Provider: "local", Containers: containers}
	scan := func(n int) time.Duration {
		workers := make([]*cluster.Worker, n)
		ids := make([]string, n)
		for i := range workers {
			ids[i] = fmt.Sprintf("w%d", i)
			worlds := cluster.NewLocalWorlds(1)
			if _, err := worlds.Fleet(spec); err != nil {
				t.Fatal(err)
			}
			workers[i] = cluster.NewWorker(ids[i], worlds)
		}
		coord := cluster.NewCoordinator(cluster.Config{ShardSize: containers / (4 * n)},
			cluster.NewInProc(workers...), ids, cluster.NewMetrics(nil))
		run := spec
		run.Tick = cluster.DefaultTick + 1 // dirty every subsystem once
		start := time.Now()
		res, err := coord.Scan(context.Background(), run)
		if err != nil || res.Partial {
			t.Fatalf("scan at %d workers: err=%v partial=%v", n, err, res != nil && res.Partial)
		}
		return time.Since(start)
	}
	one, four := scan(1), scan(4)
	t.Logf("workers=1 %v, workers=4 %v (%.2fx)", one, four, float64(one)/float64(four))
	if four > one/2 {
		t.Errorf("4-worker scan %v not ≥2x faster than 1-worker %v", four, one)
	}
}

func BenchmarkClusterFleet(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			spec := cluster.Spec{Provider: "local", Containers: benchFleetContainers}
			// Per-worker replicas — the deployment topology, and the one
			// that scales: each worker validates its shards on its own
			// engine. (A SharedWorlds single engine serializes on shared
			// caches; replica clock advances cost microseconds, so
			// duplicating them is free.) Replicas are built outside the
			// timer: the benchmark measures scan fan-out, not world
			// construction.
			workers := make([]*cluster.Worker, n)
			ids := make([]string, n)
			for i := range workers {
				ids[i] = fmt.Sprintf("w%d", i)
				worlds := cluster.NewLocalWorlds(1)
				if _, err := worlds.Fleet(spec); err != nil {
					b.Fatal(err)
				}
				workers[i] = cluster.NewWorker(ids[i], worlds)
			}
			coord := cluster.NewCoordinator(cluster.Config{ShardSize: benchShardSize},
				cluster.NewInProc(workers...), ids, cluster.NewMetrics(nil))

			tick := float64(cluster.DefaultTick)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tick++ // dirty the world: every scan re-renders changed subsystems
				spec.Tick = tick
				res, err := coord.Scan(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.Partial || len(res.Findings) != benchFleetContainers {
					b.Fatalf("iteration %d: partial=%v findings=%d", i, res.Partial, len(res.Findings))
				}
			}
		})
	}
}
