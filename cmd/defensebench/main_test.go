package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig6", "-table3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "FIG 6") || !strings.Contains(s, "TABLE III") {
		t.Fatalf("sections missing:\n%s", s)
	}
	if strings.Contains(s, "FIG 8") {
		t.Fatal("unselected section printed")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-wat"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "defensebench ") {
		t.Fatalf("version output %q lacks the binary name", out.String())
	}
}
