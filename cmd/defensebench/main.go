// Command defensebench evaluates the power-based namespace defense
// (Section VI): the power-model fits (Figs. 6–7), model accuracy on the
// SPEC subset (Fig. 8), isolation transparency (Fig. 9), the UnixBench
// overhead table (Table III), and the ablation / extension studies from
// DESIGN.md (covert channels, defense-vs-attack, strategy economics,
// attack detection, power-aware billing).
//
// Usage:
//
//	defensebench                 # everything
//	defensebench -fig8 -table3   # selected experiments
//	defensebench -ablations      # ablations + extensions only
//	defensebench -j 4            # fan independent work out over 4 workers
//	defensebench -fig8 -chaos 0.02 -chaosseed 1  # fig8 with faulty counters
//	defensebench -chaossweep     # fault-rate degradation grid (extension)
//	defensebench -policy p.json  # score a mask policy against the stage grid
//	defensebench -runtime gvisor # score a sandboxed runtime as a defense:
//	                             # matrix channels closed vs plain Docker,
//	                             # and which (frequency) pierce the sandbox
//
// The -policy flag loads a mask-policy JSON file (the format leaksd's
// POST /v1/policies stores and internal/policy.Encode emits) and replays
// it offline against the defense stage grid: residual Table I leakage and
// collateral app breakage, side by side with "no defense", stage 1
// masking, and stage 2 namespacing.
//
// The -j flag bounds the worker pool for the parallel experiments
// (Fig. 8's per-benchmark ξ measurements, the covert-channel grid, and
// the ablation sweeps); 0 means GOMAXPROCS. Output is byte-identical at
// any -j value.
//
// The -chaos flag perturbs the defense's own counter reads at the given
// rate, seeded by -chaosseed: model training must reject glitched samples
// and the namespace's calibration must fall back to pure model attribution
// across reset intervals. It applies to -fig8 and seeds -chaossweep's
// grid. Rate 0 (the default) injects nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("defensebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig6 := fs.Bool("fig6", false, "core energy vs instructions fits")
	fig7 := fs.Bool("fig7", false, "DRAM energy vs cache misses fit")
	fig8 := fs.Bool("fig8", false, "model accuracy on the SPEC subset")
	fig9 := fs.Bool("fig9", false, "transparency traces")
	table3 := fs.Bool("table3", false, "UnixBench overhead")
	ablations := fs.Bool("ablations", false, "ablation and extension studies")
	sweep := fs.Bool("chaossweep", false, "fault-rate grid: detector/attack/defense degradation")
	policyFile := fs.String("policy", "", "evaluate a mask-policy JSON file against the defense stage grid")
	runtime := fs.String("runtime", "", "score a sandboxed runtime (gvisor, kata, rootless, podman) as a defense vs plain Docker")
	jobs := fs.Int("j", 0, "worker count for parallel experiments (0 = GOMAXPROCS)")
	chaosRate := fs.Float64("chaos", 0, "fault-injection rate on the defense's counter reads (0 = off; applies to -fig8)")
	chaosSeed := fs.Int64("chaosseed", 1, "seed for the deterministic fault streams")
	snapshots := fs.Bool("snapshots", true, "reuse simulated worlds via copy-on-write snapshots (false = rebuild every world)")
	prof := profiling.Register(fs)
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetSnapshots(*snapshots)
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("defensebench"))
		return 0
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(stderr, "defensebench: %v\n", err)
		return 1
	}
	defer prof.Stop(func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) })
	all := !*fig6 && !*fig7 && !*fig8 && !*fig9 && !*table3 && !*ablations && !*sweep && *policyFile == "" && *runtime == ""
	spec := chaos.Spec{Rate: *chaosRate, Seed: *chaosSeed}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "defensebench: %v\n", err)
		return 1
	}

	if *fig6 || all {
		r, err := experiments.Fig6()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *fig7 || all {
		r, err := experiments.Fig7()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *fig8 || all {
		r, err := experiments.Fig8ChaosWorkers(spec, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *fig9 || all {
		r, err := experiments.Fig9()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *table3 || all {
		fmt.Fprintln(stdout, experiments.Table3())
	}
	if *ablations || all {
		cs, err := experiments.CovertSurveyWorkers(*jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, cs)
		rd, err := experiments.DefendedAttack()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, rd)
		det, err := experiments.Detection()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, det)
		pb, err := experiments.PowerBilling()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, pb)
		r1, err := experiments.AblationCalibrationWorkers(*jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r1)
		r2, err := experiments.AblationModelFeatures()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r2)
		sc, err := experiments.AblationStrategyCostWorkers(*jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, experiments.RenderStrategyCost(sc))
		points, err := experiments.AblationCrestThresholdWorkers(*jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, experiments.RenderCrestSweep(points))
		stages, err := experiments.AblationDefenseStages()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, experiments.RenderStages(stages))
	}
	if *sweep {
		r, err := experiments.ChaosSweep(nil, *chaosSeed, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *policyFile != "" {
		r, err := experiments.PolicyEvalFile(*policyFile)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *runtime != "" {
		r, err := experiments.RuntimeDefense(*runtime, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	return 0
}
