// Command powersim reproduces the power-attack experiments of Section IV:
// the benign one-week power trace of eight servers (Fig. 2), the
// synergistic-vs-periodic attack comparison (Fig. 3), and the co-resident
// container aggregation on a single server (Fig. 4).
//
// Usage:
//
//	powersim                 # all three figures
//	powersim -fig2 -days 7   # the week-long trace only
//	powersim -fig3           # attack comparison only
//	powersim -fig3sweep 8    # fig3 statistics across seeds (extension)
//	powersim -fig3sweep 8 -j 4  # the sweep's seeds fanned over 4 workers
//	powersim -fig4           # aggregation experiment only
//	powersim -fig3 -chaos 0.02 -chaosseed 1  # fig3 with faulty monitors
//
// The -j flag bounds the worker pool for the seed sweep; 0 means
// GOMAXPROCS. Statistics are byte-identical at any -j value.
//
// The -chaos flag arms the attacked rack's observation surface with
// deterministic fault injection at the given rate, seeded by -chaosseed:
// the attacker's power monitors must then ride flaky energy counters. It
// applies to -fig3; the other figures read the physics directly and are
// unaffected. Rate 0 (the default) injects nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("powersim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig2 := fs.Bool("fig2", false, "one-week benign power trace of 8 servers")
	fig3 := fs.Bool("fig3", false, "synergistic vs periodic attack")
	fig4 := fs.Bool("fig4", false, "co-resident aggregation on one server")
	sweep := fs.Int("fig3sweep", 0, "repeat fig3 over N seeds and report statistics")
	days := fs.Int("days", 7, "trace length for -fig2, in days")
	series := fs.Bool("series", false, "also dump raw series values")
	jobs := fs.Int("j", 0, "worker count for the seed sweep (0 = GOMAXPROCS)")
	chaosRate := fs.Float64("chaos", 0, "fault-injection rate on the observation surface (0 = off; applies to -fig3)")
	chaosSeed := fs.Int64("chaosseed", 1, "seed for the deterministic fault streams")
	snapshots := fs.Bool("snapshots", true, "reuse simulated worlds via copy-on-write snapshots (false = rebuild every world)")
	prof := profiling.Register(fs)
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetSnapshots(*snapshots)
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("powersim"))
		return 0
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(stderr, "powersim: %v\n", err)
		return 1
	}
	defer prof.Stop(func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) })
	all := !*fig2 && !*fig3 && !*fig4 && *sweep == 0
	spec := chaos.Spec{Rate: *chaosRate, Seed: *chaosSeed}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "powersim: %v\n", err)
		return 1
	}
	if *fig2 || all {
		r := experiments.Fig2(*days)
		fmt.Fprint(stdout, r)
		if *series {
			dump(stdout, "fig2-30s-avg-watts", r.Avg30s)
		}
	}
	if *fig3 || all {
		r, err := experiments.Fig3Chaos(spec)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, r)
		if *series {
			dump(stdout, "fig3-synergistic-watts", r.Synergistic.Series)
			dump(stdout, "fig3-periodic-watts", r.Periodic.Series)
		}
	}
	if *sweep > 0 {
		r, err := experiments.Fig3SweepWorkers(*sweep, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, r)
	}
	if *fig4 || all {
		r, err := experiments.Fig4()
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, r)
	}
	return 0
}

func dump(w io.Writer, name string, vs []float64) {
	fmt.Fprintf(w, "# %s (%d points)\n", name, len(vs))
	for i, v := range vs {
		fmt.Fprintf(w, "%d %.1f\n", i, v)
	}
}
