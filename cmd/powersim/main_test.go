package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig4(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "FIG 4") || strings.Contains(out.String(), "FIG 2") {
		t.Fatalf("wrong sections:\n%s", out.String())
	}
}

func TestRunFig2ShortWithSeries(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig2", "-days", "1", "-series"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "fig2-30s-avg-watts") {
		t.Fatal("series dump missing")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "powersim ") {
		t.Fatalf("version output %q lacks the binary name", out.String())
	}
}
