package main

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// deadAddr reserves a port and releases it: connections to it are refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// TestRemoteDeadDaemonReportsErrors: a run against a refused connection
// must exit nonzero and account the failures by cause — not hang, not
// bury them.
func TestRemoteDeadDaemonReportsErrors(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", deadAddr(t), "-n", "20", "-c", "2", "-timeout", "2s",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d against a dead daemon, want 1\nstderr: %s", code, errb.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "transport errors") {
		t.Fatalf("stderr should report transport errors, got:\n%s", msg)
	}
	if !strings.Contains(msg, "connection refused") && !strings.Contains(msg, "dial error") {
		t.Fatalf("stderr should bucket the cause, got:\n%s", msg)
	}
}

// TestRemoteTimeoutBounded: a daemon that accepts and then stalls must be
// cut off by -timeout and the run must finish promptly with the timeouts
// accounted.
func TestRemoteTimeoutBounded(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-stall
	}))
	defer func() { close(stall); srv.Close() }()

	var out, errb bytes.Buffer
	start := time.Now()
	code := run([]string{
		"-addr", srv.URL, "-n", "4", "-c", "2", "-timeout", "150ms",
	}, &out, &errb)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run against a stalled daemon took %v — timeout not applied", elapsed)
	}
	if code != 1 {
		t.Fatalf("exit code %d against a stalled daemon, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "timeout") {
		t.Fatalf("stderr should bucket timeouts, got:\n%s", errb.String())
	}
}

// TestTimeoutFlagValidation: a non-positive timeout in remote mode is a
// usage error.
func TestTimeoutFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "localhost:1", "-timeout", "0s", "-n", "1"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d for -timeout 0, want 2", code)
	}
}

// TestParseMix covers the shorthand/weight grammar.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("results=6,/v1/scans?limit=5=2,version")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(mix))
	}
	if mix[0].Path != "/v1/results" || mix[0].Weight != 6 {
		t.Fatalf("entry 0 = %+v", mix[0])
	}
	if mix[1].Path != "/v1/scans?limit=5" || mix[1].Weight != 2 {
		t.Fatalf("entry 1 = %+v", mix[1])
	}
	if mix[2].Path != "/v1/version" || mix[2].Weight != 1 {
		t.Fatalf("entry 2 = %+v", mix[2])
	}
	if _, err := parseMix("results=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := parseMix(""); err == nil {
		t.Fatal("empty mix accepted")
	}
}
