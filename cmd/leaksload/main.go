// Command leaksload is the deterministic load harness for leaksd's /v1
// serving path: it drives the daemon's handler with a seeded, weighted
// endpoint mix — in-process against a synthetic-state daemon by default,
// or over HTTP against a running leaksd with -addr — and reports latency
// quantiles, status counts, and sustained throughput.
//
// Usage:
//
//	leaksload                        # 5s closed-loop in-proc run, default mix
//	leaksload -n 500000 -c 8         # exact request budget across 8 workers
//	leaksload -rps 100000 -duration 10s   # open-loop at a target rate
//	leaksload -revalidate            # steady-state pollers (exercises 304s)
//	leaksload -respcache=false       # cold-render baseline (cache off)
//	leaksload -addr http://localhost:8077 -duration 10s   # remote daemon
//	leaksload -addr localhost:8077 -timeout 2s            # bounded per-request wait
//	leaksload -mix "results=6,scans=2,engine=1" -seed 7
//	leaksload -json                  # machine-readable result
//	leaksload -metrics               # dump the loadgen_* telemetry families
//
// Remote runs are bounded and accountable: every request carries the
// -timeout deadline, and transport-level failures (connection refused,
// reset, timeout) are counted per cause and reported at exit with a
// nonzero status — a load run against a dying worker reports errors
// instead of hanging.
//
// The default in-proc mode fabricates deterministic scan state first (one
// synthetic inspect result per provider, via the scheduler's runner hook —
// no real compute), so /v1/results and /v1/scans serve realistic bodies.
// The mix entries are endpoint shorthands (results, scans, channels,
// providers, engine, version — expanded to /v1/<name>) or explicit paths
// with optional query strings; weights follow "=N" (default 1).
//
// Two runs with the same seed, mix, and budget issue byte-identical
// request sequences — load tests here are reproducible artifacts, like
// every other experiment in this repository. Expected numbers for the
// 1-CPU CI host live in docs/SERVING.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leaksload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "remote leaksd base URL (empty = in-process daemon)")
	mixSpec := fs.String("mix", "results=6,scans=2,channels=1,providers=1,engine=1,version=1",
		"weighted endpoint mix: name-or-path[=weight], comma-separated")
	requests := fs.Int("n", 0, "total request budget (0 = run for -duration)")
	duration := fs.Duration("duration", 5*time.Second, "run length when -n is 0")
	rps := fs.Float64("rps", 0, "open-loop target req/s across all workers (0 = closed loop)")
	concurrency := fs.Int("c", 4, "concurrent load workers")
	seed := fs.Int64("seed", 1, "endpoint-mix seed (same seed, same request sequence)")
	timeout := fs.Duration("timeout", 30*time.Second, "remote mode: per-request timeout (dead daemons surface as errors, not hangs)")
	revalidate := fs.Bool("revalidate", false, "send If-None-Match from prior responses (steady-state 304s)")
	respCache := fs.Bool("respcache", true, "in-proc mode: serve through the response cache")
	jsonOut := fs.Bool("json", false, "print the result as JSON")
	metrics := fs.Bool("metrics", false, "dump loadgen telemetry in Prometheus text format")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("leaksload"))
		return 0
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "leaksload: %v\n", err)
		return 2
	}

	var handler http.Handler
	var remote *remoteTarget
	if *addr != "" {
		base := strings.TrimRight(*addr, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base // bare host:port, the common spelling
		}
		if *timeout <= 0 {
			fmt.Fprintln(stderr, "leaksload: -timeout must be positive")
			return 2
		}
		remote = &remoteTarget{base: base, client: &http.Client{Timeout: *timeout}}
		handler = remote
	} else {
		daemon, shutdown, err := inprocDaemon(!*respCache)
		if err != nil {
			fmt.Fprintf(stderr, "leaksload: %v\n", err)
			return 1
		}
		defer shutdown()
		handler = daemon
	}

	reg := telemetry.NewRegistry()
	cfg := loadgen.Config{
		Mix:         mix,
		Requests:    *requests,
		Duration:    *duration,
		RPS:         *rps,
		Concurrency: *concurrency,
		Seed:        *seed,
		Revalidate:  *revalidate,
		Registry:    reg,
	}
	res, err := loadgen.Run(context.Background(), handler, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "leaksload: %v\n", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	} else {
		fmt.Fprintln(stdout, res)
	}
	if *metrics {
		_ = reg.WritePrometheus(stdout)
	}
	exit := 0
	if remote != nil {
		if n := remote.errors.Load(); n > 0 {
			// A dying or unreachable daemon must fail the run loudly: every
			// transport-level failure (connection refused, reset, timeout) was
			// counted per cause and is reported here instead of hiding inside
			// the 502 status bucket.
			fmt.Fprintf(stderr, "leaksload: %d transport errors against %s:\n", n, remote.base)
			remote.mu.Lock()
			causes := make([]string, 0, len(remote.byCause))
			for cause := range remote.byCause {
				causes = append(causes, cause)
			}
			sort.Strings(causes)
			for _, cause := range causes {
				fmt.Fprintf(stderr, "  %6d  %s\n", remote.byCause[cause], cause)
			}
			remote.mu.Unlock()
			exit = 1
		}
	}
	if res.Other > 0 {
		fmt.Fprintf(stderr, "leaksload: %d responses were neither 200 nor 304\n", res.Other)
		exit = 1
	}
	return exit
}

// parseMix expands "name-or-path[=weight]" entries. Shorthand names map to
// their /v1 path.
func parseMix(spec string) ([]loadgen.Endpoint, error) {
	var mix []loadgen.Endpoint
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		path, weight := entry, 1
		if i := strings.LastIndexByte(entry, '='); i >= 0 {
			n, err := strconv.Atoi(entry[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", entry)
			}
			path, weight = entry[:i], n
		}
		if !strings.HasPrefix(path, "/") {
			path = "/v1/" + path
		}
		mix = append(mix, loadgen.Endpoint{Path: path, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return mix, nil
}

// inprocDaemon builds a leaksd handler over deterministic synthetic state:
// one fabricated inspect result per provider, produced through the
// scheduler's runner hook so no real scan compute runs.
func inprocDaemon(disableCache bool) (http.Handler, func(), error) {
	sched := service.New(service.Config{Workers: 2, QueueCap: 64}, nil)
	sched.SetRunner(syntheticRunner)
	sched.Start()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = sched.Shutdown(ctx)
	}
	for _, name := range service.ProviderNames() {
		if _, err := sched.Submit(service.ScanRequest{Kind: service.KindInspect, Provider: name}); err != nil {
			shutdown()
			return nil, nil, fmt.Errorf("seed scan for %q: %v", name, err)
		}
	}
	// Wait for the synthetic scans to land so the load run serves stable
	// epochs (an in-flight scan would keep bumping them).
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, j := range sched.Jobs() {
			if !j.Terminal() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			shutdown()
			return nil, nil, fmt.Errorf("seed scans did not finish within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	handler := service.NewHandler(service.APIConfig{
		Scheduler:            sched,
		Version:              buildinfo.String("leaksload"),
		DisableResponseCache: disableCache,
	})
	return handler, shutdown, nil
}

// syntheticRunner fabricates a deterministic inspect result: every Table I
// channel for the request's provider, availability cycling through the
// three glyphs by channel index.
func syntheticRunner(_ context.Context, req service.ScanRequest) (*service.ScanResult, error) {
	glyphs := []string{core.Available.String(), core.PartiallyAvailable.String(), core.Unavailable.String()}
	channels := service.Channels()
	verdicts := make([]service.Verdict, len(channels))
	for i, ch := range channels {
		verdicts[i] = service.Verdict{
			Provider:     req.Provider,
			Channel:      ch.Name,
			Availability: glyphs[i%len(glyphs)],
		}
	}
	return &service.ScanResult{
		Request:  req,
		Rendered: fmt.Sprintf("synthetic inspect of %s (%d channels)", req.Provider, len(channels)),
		Verdicts: verdicts,
	}, nil
}

// remoteTarget adapts a remote leaksd to http.Handler so the same loadgen
// loop drives both modes. Latency then includes the network, which is the
// point of remote runs. Transport-level failures — connection refused,
// reset, timeout — are accounted per cause so a run against a dying
// daemon reports what went wrong instead of hanging or silently folding
// errors into a status bucket.
type remoteTarget struct {
	base   string
	client *http.Client

	errors  atomic.Uint64
	mu      sync.Mutex
	byCause map[string]uint64
}

// fail counts one transport failure and surfaces it as a 502 to the
// loadgen loop (which files it under Other, failing the run).
func (t *remoteTarget) fail(w http.ResponseWriter, err error) {
	t.errors.Add(1)
	t.mu.Lock()
	if t.byCause == nil {
		t.byCause = make(map[string]uint64)
	}
	t.byCause[errorCause(err)]++
	t.mu.Unlock()
	w.WriteHeader(http.StatusBadGateway)
}

// errorCause collapses transport errors into stable buckets: the raw
// strings embed ephemeral ports and would never aggregate.
func errorCause(err error) string {
	switch {
	case err == nil:
		return "unknown"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, syscall.ECONNREFUSED):
		return "connection refused"
	case errors.Is(err, syscall.ECONNRESET):
		return "connection reset"
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return "timeout"
	}
	var oerr *net.OpError
	if errors.As(err, &oerr) {
		return oerr.Op + " error"
	}
	return "other transport error"
}

func (t *remoteTarget) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequest(r.Method, t.base+r.URL.RequestURI(), nil)
	if err != nil {
		t.fail(w, err)
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		t.fail(w, err)
		return
	}
	defer resp.Body.Close()
	if et := resp.Header.Get("Etag"); et != "" {
		w.Header().Set("Etag", et)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
