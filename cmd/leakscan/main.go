// Command leakscan reproduces the paper's leakage-channel study: it runs
// the cross-validation detector (Fig. 1) against the local Docker/LXC
// testbed and the five simulated commercial cloud profiles, printing
// Table I (channel availability per cloud) and Table II (channel ranking
// for co-residence inference).
//
// Usage:
//
//	leakscan            # both tables + discovery
//	leakscan -table1    # availability matrix only
//	leakscan -table2    # U/V/M + entropy ranking only
//	leakscan -discover  # leaking files beyond the Table I registry
//	leakscan -matrix    # runtime matrix: Table I channels + the DVFS
//	                    # frequency channel across clouds AND sandboxed
//	                    # runtimes (gvisor, kata, rootless, podman)
//	leakscan -runtime gvisor  # one sandboxed runtime, matrix channel set
//	leakscan -fleet 8   # validate 8 co-resident containers in one batched
//	                    # engine pass (each host file rendered once)
//	leakscan -j 4       # fan independent work out over 4 workers
//	leakscan -table1 -chaos 0.02 -chaosseed 1  # with fault injection
//
// The -j flag bounds the worker pool for the parallel experiments
// (Table I's per-provider inspections, discovery's per-path reads);
// 0 means GOMAXPROCS. Output is byte-identical at any -j value.
//
// The -chaos flag arms the inspected clouds' observation surfaces with
// deterministic fault injection at the given rate (transient read errors,
// torn/stale reads, flapping masks, counter resets), seeded by -chaosseed.
// It applies to -table1 and -discover; -table2 reads a chaos-free host.
// Rate 0 (the default) injects nothing and is byte-identical to a build
// without the chaos layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leakscan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table1 := fs.Bool("table1", false, "print Table I (leakage channels per cloud)")
	table2 := fs.Bool("table2", false, "print Table II (channel ranking)")
	discover := fs.Bool("discover", false, "list leaking files beyond the Table I registry")
	matrix := fs.Bool("matrix", false, "print the runtime matrix (channels across clouds and sandboxed runtimes)")
	runtime := fs.String("runtime", "", "inspect one sandboxed runtime (gvisor, kata, rootless, podman)")
	fleet := fs.Int("fleet", 0, "validate N co-resident containers in one batched engine pass (0 = off)")
	jobs := fs.Int("j", 0, "worker count for parallel experiments (0 = GOMAXPROCS)")
	chaosRate := fs.Float64("chaos", 0, "fault-injection rate on the observation surface (0 = off)")
	chaosSeed := fs.Int64("chaosseed", 1, "seed for the deterministic fault streams")
	snapshots := fs.Bool("snapshots", true, "reuse simulated worlds via copy-on-write snapshots (false = rebuild every world)")
	prof := profiling.Register(fs)
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetSnapshots(*snapshots)
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("leakscan"))
		return 0
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(stderr, "leakscan: %v\n", err)
		return 1
	}
	defer prof.Stop(func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) })
	all := !*table1 && !*table2 && !*discover && !*matrix && *runtime == "" && *fleet == 0
	spec := chaos.Spec{Rate: *chaosRate, Seed: *chaosSeed}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "leakscan: %v\n", err)
		return 1
	}
	if *table1 || all {
		r, err := experiments.Table1ChaosWorkers(spec, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *table2 || all {
		r, err := experiments.Table2()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *discover || all {
		r, err := experiments.DiscoveryChaosWorkers(spec, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *matrix {
		r, err := experiments.MatrixSweepSeeded(context.Background(), spec, 0, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *runtime != "" {
		r, err := experiments.InspectRuntimeChaosWorkers(*runtime, spec, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	if *fleet > 0 {
		r, err := experiments.FleetScanSeeded(context.Background(), spec, 0, *fleet, *jobs)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, r)
	}
	return 0
}
