package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-table1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "TABLE I") || strings.Contains(out.String(), "TABLE II") {
		t.Fatalf("wrong sections:\n%s", out.String())
	}
}

func TestRunDiscover(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-discover"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "/proc/vmstat") {
		t.Fatalf("discovery incomplete:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "nonsense") {
		t.Fatal("usage not printed to stderr")
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "leakscan ") {
		t.Fatalf("version output %q lacks the binary name", out.String())
	}
}
