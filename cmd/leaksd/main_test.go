package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb, nil); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "leaksd ") {
		t.Fatalf("version output %q lacks the binary name", out.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-warp-drive"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d; want 2 for a flag error", code)
	}
}

func TestBadListenAddress(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:0"}, &out, &errb, nil); code != 1 {
		t.Fatalf("exit = %d; want 1 for an unusable address", code)
	}
	if !strings.Contains(errb.String(), "serve") {
		t.Fatalf("stderr %q lacks the serve error", errb.String())
	}
}

func TestRoleFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-role", "banana"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d; want 2 for an unknown role", code)
	}
	if !strings.Contains(errb.String(), "unknown -role") {
		t.Fatalf("stderr %q lacks the role error", errb.String())
	}
}

func TestCoordinatorRequiresPeers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-role", "coordinator"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d; want 2 for a coordinator without peers", code)
	}
	if !strings.Contains(errb.String(), "-peers") {
		t.Fatalf("stderr %q lacks the peers error", errb.String())
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" a:1, b:2,,c:3 ,")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v; want %v", got, want)
		}
	}
	if splitPeers("") != nil {
		t.Fatalf("splitPeers(\"\") = %v; want nil", splitPeers(""))
	}
}

// TestClusterEndToEnd boots two worker daemons and a coordinator daemon on
// ephemeral ports — real HTTP between nodes — runs a partitioned fleet
// scan through POST /v1/cluster/scans, checks role gating, and drains all
// three with one SIGTERM.
func TestClusterEndToEnd(t *testing.T) {
	type daemon struct {
		out, errb bytes.Buffer
		exit      chan int
		base      string
	}
	boot := func(args ...string) *daemon {
		d := &daemon{exit: make(chan int, 1)}
		ready := make(chan string, 1)
		go func() { d.exit <- run(args, &d.out, &d.errb, ready) }()
		select {
		case addr := <-ready:
			d.base = "http://" + addr
			return d
		case code := <-d.exit:
			t.Fatalf("daemon %v exited early with %d: %s", args, code, d.errb.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %v never became ready", args)
		}
		return nil
	}

	w1 := boot("-addr", "127.0.0.1:0", "-role", "worker")
	w2 := boot("-addr", "127.0.0.1:0", "-role", "worker")
	coord := boot("-addr", "127.0.0.1:0", "-role", "coordinator",
		"-peers", strings.TrimPrefix(w1.base, "http://")+","+strings.TrimPrefix(w2.base, "http://"))

	// Worker liveness probe answers on workers, 409s on the coordinator.
	resp, err := http.Get(w1.base + "/v1/cluster/ping")
	if err != nil {
		t.Fatalf("GET ping: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker ping status = %d; want 200", resp.StatusCode)
	}
	resp, err = http.Get(coord.base + "/v1/cluster/ping")
	if err != nil {
		t.Fatalf("GET coordinator ping: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("coordinator ping status = %d; want 409 wrong_role", resp.StatusCode)
	}

	// A partitioned fleet scan over real HTTP links: complete, with every
	// container accounted for.
	resp, err = http.Post(coord.base+"/v1/cluster/scans", "application/json",
		strings.NewReader(`{"provider":"local","containers":6}`))
	if err != nil {
		t.Fatalf("POST cluster scan: %v", err)
	}
	var scan struct {
		Generation uint64 `json:"generation"`
		Partial    bool   `json:"partial"`
		Leaking    []int  `json:"leaking"`
		Shards     []struct {
			Status string `json:"status"`
			Worker string `json:"worker"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scan); err != nil {
		t.Fatalf("decode scan: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d; want 200", resp.StatusCode)
	}
	if scan.Partial || scan.Generation == 0 || len(scan.Leaking) != 6 {
		t.Fatalf("scan = %+v; want complete result over 6 containers", scan)
	}
	for _, sh := range scan.Shards {
		if sh.Status != "done" {
			t.Fatalf("shard on %s = %s; want done", sh.Worker, sh.Status)
		}
	}
	for i, n := range scan.Leaking {
		if n < 0 {
			t.Fatalf("container %d degraded out of a complete scan", i)
		}
	}

	// Cluster status on the coordinator lists both workers.
	resp, err = http.Get(coord.base + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	var status struct {
		Role    string `json:"role"`
		Cluster struct {
			Workers []struct {
				ID    string `json:"id"`
				Alive bool   `json:"alive"`
			} `json:"workers"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decode cluster status: %v", err)
	}
	resp.Body.Close()
	if status.Role != "coordinator" || len(status.Cluster.Workers) != 2 {
		t.Fatalf("cluster status = %+v; want coordinator with 2 workers", status)
	}
	for _, w := range status.Cluster.Workers {
		if !w.Alive {
			t.Fatalf("worker %s marked dead in a healthy cluster", w.ID)
		}
	}

	// One SIGTERM reaches all three daemons; each drains to exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("deliver SIGTERM: %v", err)
	}
	for _, d := range []*daemon{w1, w2, coord} {
		select {
		case code := <-d.exit:
			if code != 0 {
				t.Fatalf("exit = %d; stderr %s", code, d.errb.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatal("a daemon never exited after SIGTERM")
		}
	}
}

// TestDaemonServesAndDrainsOnSignal boots the real daemon on an ephemeral
// port, exercises the API end to end, then delivers SIGTERM and verifies
// the drain completes with exit code 0.
func TestDaemonServesAndDrainsOnSignal(t *testing.T) {
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s"}, &out, &errb, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("daemon exited early with %d: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Liveness and build info.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || !strings.HasPrefix(health.Version, "leaksd ") {
		t.Fatalf("healthz = %+v", health)
	}

	// One real scan through the daemon (a single-provider inspection is the
	// cheapest compute-bearing kind).
	resp, err = http.Post(base+"/scans", "application/json",
		strings.NewReader(`{"kind":"inspect","provider":"local"}`))
	if err != nil {
		t.Fatalf("POST /scans: %v", err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d; want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/scans/%s", base, job.ID))
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var j struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		r.Body.Close()
		if j.Status == "done" {
			break
		}
		if j.Status == "failed" || j.Status == "canceled" {
			t.Fatalf("scan %s = %s (%s)", job.ID, j.Status, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("scan %s stuck in %s", job.ID, j.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Metrics moved.
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	scrape, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(scrape), `leaksd_scans_total{kind="inspect",status="done"} 1`) {
		t.Fatalf("metrics lack the finished scan:\n%s", scrape)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("deliver SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "stopped") {
		t.Fatalf("drain log = %q; want draining + stopped lines", out.String())
	}
}
