package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb, nil); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "leaksd ") {
		t.Fatalf("version output %q lacks the binary name", out.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-warp-drive"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d; want 2 for a flag error", code)
	}
}

func TestBadListenAddress(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:0"}, &out, &errb, nil); code != 1 {
		t.Fatalf("exit = %d; want 1 for an unusable address", code)
	}
	if !strings.Contains(errb.String(), "serve") {
		t.Fatalf("stderr %q lacks the serve error", errb.String())
	}
}

// TestDaemonServesAndDrainsOnSignal boots the real daemon on an ephemeral
// port, exercises the API end to end, then delivers SIGTERM and verifies
// the drain completes with exit code 0.
func TestDaemonServesAndDrainsOnSignal(t *testing.T) {
	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s"}, &out, &errb, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("daemon exited early with %d: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Liveness and build info.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || !strings.HasPrefix(health.Version, "leaksd ") {
		t.Fatalf("healthz = %+v", health)
	}

	// One real scan through the daemon (a single-provider inspection is the
	// cheapest compute-bearing kind).
	resp, err = http.Post(base+"/scans", "application/json",
		strings.NewReader(`{"kind":"inspect","provider":"local"}`))
	if err != nil {
		t.Fatalf("POST /scans: %v", err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d; want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/scans/%s", base, job.ID))
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var j struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		r.Body.Close()
		if j.Status == "done" {
			break
		}
		if j.Status == "failed" || j.Status == "canceled" {
			t.Fatalf("scan %s = %s (%s)", job.ID, j.Status, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("scan %s stuck in %s", job.ID, j.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Metrics moved.
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	scrape, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(scrape), `leaksd_scans_total{kind="inspect",status="done"} 1`) {
		t.Fatalf("metrics lack the finished scan:\n%s", scrape)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("deliver SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "stopped") {
		t.Fatalf("drain log = %q; want draining + stopped lines", out.String())
	}
}
