// Command leaksd is the long-running leakage-monitoring service: the
// paper's one-shot detection framework (Fig. 1) turned into a daemon that
// schedules scans, caches results, streams verdict changes, and exposes
// operational metrics — the shape a container-cloud operator actually
// deploys to watch a fleet's leakage posture over time.
//
// API (JSON unless noted; full schema in docs/openapi.yaml):
//
//	POST /v1/scans        submit {"kind":"table1"|"inspect"|"discovery"|"matrix"|"fig3"|"fig8"|"chaossweep", ...}
//	GET  /v1/scans        list jobs (?limit=&offset=&provider=&runtime=&verdict=)
//	GET  /v1/scans/{id}   poll one job (result embedded when done)
//	GET  /v1/results      latest verdicts per provider (?limit=&offset=&provider=&runtime=&verdict=)
//	GET  /v1/matrix       channels x targets availability matrix (clouds + sandboxed runtimes)
//	GET  /v1/channels     the Table I channel registry
//	GET  /v1/providers    inspectable provider profiles
//	GET  /v1/runtimes     inspectable sandboxed-runtime profiles (gvisor, kata, rootless, podman)
//	GET  /v1/engine       incremental-engine cache + epoch stats
//	GET  /v1/events       Server-Sent Events: verdicts + scan lifecycle + policy rollouts
//	POST /v1/policies     synthesize (or store) a mask policy for a provider
//	GET  /v1/policies     list stored policies
//	GET  /v1/policies/{id}          one policy with report + latest rollout
//	DELETE /v1/policies/{id}        remove a stored policy
//	POST /v1/policies/{id}/rollout  staged canary rollout over a fresh fleet
//	GET  /v1/policies/{id}/rollout  latest rollout outcome
//	GET  /v1/cluster      cluster role + membership/heartbeat status
//	POST /v1/cluster/scans   coordinator: partitioned fleet scan
//	POST /v1/cluster/shards  worker: execute one fleet shard
//	GET  /v1/cluster/ping    worker: liveness probe
//	GET  /v1/metrics      Prometheus text format
//	GET  /v1/healthz      liveness, uptime, drain state
//	GET  /v1/version      build info
//
// /v1 errors carry the structured envelope {"error":{"code","message"}}.
// The pre-versioning routes (POST /scans, GET /results, …) remain as
// byte-identical deprecated aliases — they answer with a Deprecation
// header and a Link to their /v1 successor (policy in ARCHITECTURE.md).
//
// The /v1 read endpoints serve through an epoch-keyed response cache
// (-respcache, default on): bodies render once per state epoch and replay
// allocation-free, every 200 carries a strong ETag, and If-None-Match
// clients get 304s until the underlying state actually changes. The full
// serving contract — and the leaksload harness that measures it — is
// documented in docs/SERVING.md.
//
// Usage:
//
//	leaksd                          # serve on :8077
//	leaksd -addr :9000 -workers 4   # bigger scan pool
//	leaksd -scan-every 10m          # recurring full Table I scans
//	leaksd -matrix-every 15m        # recurring runtime-matrix scans
//	leaksd -sessions 32             # bigger incremental-session pool
//	leaksd -version                 # print build info and exit
//
// Clustered deployment (fault-tolerant partitioned fleet scans; design in
// ARCHITECTURE.md):
//
//	leaksd -role=worker -addr :8081                        # shard executor
//	leaksd -role=worker -addr :8082
//	leaksd -role=coordinator -peers localhost:8081,localhost:8082
//
// The coordinator partitions fleet scans across workers by consistent
// hashing, heartbeats them (-heartbeat), and requeues shards from dead
// workers; merged output is byte-identical to a single-node scan. Workers
// cache -worlds fleet replicas and advance them by epoch deltas.
//
// Identical scan configs (kind, provider, seed, chaos spec — the worker
// count is excluded, because output is byte-identical at any count) are
// served from an in-memory TTL+LRU result store instead of recomputed.
// Chaos-free table1/inspect/discovery scans that do run reuse pooled
// incremental-engine sessions (see internal/engine): a recurring scan's
// later ticks re-validate only pseudo-files whose kernel subsystems
// changed, with byte-identical output to a cold scan. With default seeds,
// API-returned renders are byte-identical to the corresponding CLI output
// (`leakscan -table1` etc.).
//
// The /v1/policies surface closes the loop from detection to defense:
// POST with just a provider mines the benign pseudo-file read surface,
// synthesizes a minimal deny/empty masking policy that closes the leaking
// Table I channels without breaking any benign read, and verifies closure
// by re-running the detector under the policy. A rollout stages the policy
// onto a ring-hash-ranked canary subset of a fresh fleet, watches benign
// reads across health epochs, then promotes — or auto-reverts on the first
// broken read. Phases and verdict flips stream on /v1/events; outcomes
// land in the leaksd_policy_* metric families. ARCHITECTURE.md documents
// the state machine; defensebench -policy replays stored policies offline.
//
// On SIGINT/SIGTERM the daemon drains: submissions are refused with 503,
// queued and in-flight scans finish (their results land in the store and
// on the event stream), SSE streams close, and only then does the HTTP
// listener stop. A second deadline (-drain-timeout) force-cancels
// in-flight scans through their contexts if the drain stalls.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/profiling"
	"repro/internal/service"
)

// splitPeers parses the -peers flag: comma-separated worker base URLs,
// empty elements dropped so trailing commas are harmless.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run wires flags → scheduler → HTTP server. ready, when non-nil, receives
// the bound address once the listener is up (tests use it; production
// passes nil).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("leaksd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8077", "listen address")
	workers := fs.Int("workers", 2, "concurrent scan executors")
	jobs := fs.Int("j", 0, "per-scan worker pool default (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 64, "bounded scan queue capacity")
	storeCap := fs.Int("store", 128, "result store capacity (LRU beyond)")
	storeTTL := fs.Duration("ttl", 15*time.Minute, "result store TTL")
	sessions := fs.Int("sessions", 16, "incremental-engine session pool capacity (LRU beyond)")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "per-scan deadline")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline (non-streaming endpoints)")
	retries := fs.Int("retries", 3, "max attempts per scan")
	scanEvery := fs.Duration("scan-every", 0, "run a recurring full Table I scan at this interval (0 = off)")
	matrixEvery := fs.Duration("matrix-every", 0, "run a recurring runtime-matrix scan at this interval (0 = off)")
	respCache := fs.Bool("respcache", true, "serve /v1 reads through the epoch-keyed response cache (ETag/304)")
	role := fs.String("role", "standalone", "cluster role: standalone, coordinator, or worker")
	peers := fs.String("peers", "", "coordinator: comma-separated worker base URLs (host:port or http://…)")
	workerID := fs.String("worker-id", "", "worker: cluster identity (default: the listen address)")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "coordinator: worker liveness probe interval")
	worlds := fs.Int("worlds", 4, "worker: cached fleet replicas (LRU beyond)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown drain deadline")
	prof := profiling.Register(fs)
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("leaksd"))
		return 0
	}
	// Profiles cover the daemon's whole lifetime: start before the
	// scheduler spins up, write on the drain path after serving stops.
	if err := prof.Start(); err != nil {
		fmt.Fprintf(stderr, "leaksd: %v\n", err)
		return 1
	}
	defer prof.Stop(func(format string, args ...any) { fmt.Fprintf(stderr, format, args...) })
	_ = jobs // reserved: the per-request Workers field overrides; kept as a documented default
	sched := service.New(service.Config{
		QueueCap:    *queueCap,
		Workers:     *workers,
		JobTimeout:  *jobTimeout,
		MaxAttempts: *retries,
		StoreCap:    *storeCap,
		StoreTTL:    *storeTTL,
		SessionCap:  *sessions,
	}, nil)
	sched.Start()
	if *scanEvery > 0 {
		stop, err := sched.Every("table1-recurring", *scanEvery, service.ScanRequest{Kind: service.KindTable1})
		if err != nil {
			fmt.Fprintf(stderr, "leaksd: -scan-every: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *matrixEvery > 0 {
		stop, err := sched.Every("matrix-recurring", *matrixEvery, service.ScanRequest{Kind: service.KindMatrix})
		if err != nil {
			fmt.Fprintf(stderr, "leaksd: -matrix-every: %v\n", err)
			return 1
		}
		defer stop()
	}

	// Cluster wiring: a worker executes shards against locally cached fleet
	// replicas; a coordinator partitions fleet scans across its peers over
	// HTTP with heartbeat-driven failure detection. Metrics land on the
	// scheduler's registry so one /v1/metrics scrape covers both.
	var node *cluster.Node
	var coord *cluster.Coordinator
	switch *role {
	case "standalone", "":
		node = cluster.NewStandaloneNode()
	case "worker":
		id := *workerID
		if id == "" {
			id = *addr
		}
		node = cluster.NewWorkerNode(cluster.NewWorker(id, cluster.NewLocalWorlds(*worlds)))
	case "coordinator":
		tr := cluster.NewHTTPTransport(splitPeers(*peers), nil)
		ids := tr.Workers()
		if len(ids) == 0 {
			fmt.Fprintln(stderr, "leaksd: -role=coordinator requires -peers")
			return 2
		}
		met := cluster.NewMetrics(sched.Metrics().Registry)
		coord = cluster.NewCoordinator(cluster.Config{HeartbeatEvery: *heartbeat}, tr, ids, met)
		coord.Start()
		defer coord.Stop()
		node = cluster.NewCoordinatorNode(coord)
	default:
		fmt.Fprintf(stderr, "leaksd: unknown -role %q (standalone, coordinator, worker)\n", *role)
		return 2
	}

	handler := service.NewHandler(service.APIConfig{
		Scheduler:            sched,
		Version:              buildinfo.String("leaksd"),
		RequestTimeout:       *reqTimeout,
		Cluster:              node,
		DisableResponseCache: !*respCache,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		ln, err := net.Listen("tcp", srv.Addr)
		if err != nil {
			errCh <- err
			return
		}
		if ready != nil {
			ready <- ln.Addr().String()
		}
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "leaksd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "leaksd: draining (queued and in-flight scans will finish)")
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer drainCancel()
	if err := sched.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "leaksd: drain: %v (in-flight scans were cancelled)\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "leaksd: http shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "leaksd: stopped")
	return 0
}
